package core

// REINDEXPlus is REINDEX+ (§4.1, Fig. 14): a temporary index Temp
// accumulates the cluster being rebuilt, so each day only the surviving
// old days — on average half of W/n instead of all of it — are
// re-indexed. Temp's copy is promoted to the constituent each day.
type REINDEXPlus struct {
	*base
	temp      Constituent // nil when Temp = phi
	daysToAdd []int       // old days still to re-add each day
}

// NewREINDEXPlus returns a REINDEX+ scheme.
func NewREINDEXPlus(cfg Config, bk Backend) (*REINDEXPlus, error) {
	b, err := newBase(cfg, bk, false)
	if err != nil {
		return nil, err
	}
	return &REINDEXPlus{base: b}, nil
}

// Name implements Scheme.
func (s *REINDEXPlus) Name() string { return "REINDEX+" }

// HardWindow implements Scheme.
func (s *REINDEXPlus) HardWindow() bool { return true }

// TempSizeBytes implements Scheme.
func (s *REINDEXPlus) TempSizeBytes() int64 { return sumSizes(s.temp) }

// Start implements Scheme.
func (s *REINDEXPlus) Start() error { return s.startUniform() }

// Transition implements Scheme.
func (s *REINDEXPlus) Transition(newDay int) error {
	if err := s.checkTransition(newDay); err != nil {
		return err
	}
	s.cfg.Observer.BeginTransition(newDay)
	if err := s.crash(CPBegin); err != nil {
		return err
	}
	expired := newDay - s.cfg.W
	j := s.ownerOf(expired)
	// Every REINDEX+ case starts by indexing the new day (a build or a
	// Temp add) and all of it feeds today's publish, so the whole
	// transition is critical-path work; the bulk-build cases would
	// otherwise only be attributed once their op is reported.
	markPhase(s.cfg.Observer, PhaseTransition)

	switch {
	case s.temp == nil:
		// First day of a cluster's rebuild cycle (Fig. 14 case 2): start
		// Temp with the new day; the constituent becomes Temp's copy plus
		// all surviving old days. For a 1-day cluster there are no
		// surviving days, so this first day is also the cycle's last:
		// the fresh build is promoted directly and Temp stays empty
		// (Fig. 14 assumes multi-day clusters; this closes the gap).
		s.daysToAdd = nil
		for _, d := range s.wave.Get(j).Days() {
			if d != expired {
				s.daysToAdd = append(s.daysToAdd, d)
			}
		}
		temp, err := s.bk.Build(newDay)
		if err != nil {
			return err
		}
		if err := s.crash(CPRxPlusTempBuilt); err != nil {
			temp.Drop()
			return err
		}
		if len(s.daysToAdd) == 0 {
			if err := s.publishSwap(j, temp, newDay); err != nil {
				return err
			}
			s.lastDay = newDay
			return nil
		}
		s.temp = temp
		next, err := s.deriveFrom(s.temp, s.daysToAdd)
		if err != nil {
			return err
		}
		if err := s.crash(CPRxPlusDerived); err != nil {
			next.Drop()
			return err
		}
		if err := s.publishSwap(j, next, newDay); err != nil {
			return err
		}

	case len(s.daysToAdd) == 0:
		// Last day of the cycle (case 3): Temp holds the whole new
		// cluster but the new day; promote it directly.
		if err := s.crash(CPRxPlusPromoted); err != nil {
			return err
		}
		promoted, err := s.updateTemp(s.temp, []int{newDay})
		if err != nil {
			return err
		}
		s.temp = nil
		if err := s.publishSwap(j, promoted, newDay); err != nil {
			return err
		}

	default:
		// Middle of the cycle (case 4): extend Temp with the new day and
		// promote a copy of it plus the remaining old days.
		temp, err := s.updateTemp(s.temp, []int{newDay})
		if err != nil {
			return err
		}
		s.temp = temp
		next, err := s.deriveFrom(s.temp, s.daysToAdd)
		if err != nil {
			return err
		}
		if err := s.crash(CPRxPlusDerived); err != nil {
			next.Drop()
			return err
		}
		if err := s.publishSwap(j, next, newDay); err != nil {
			return err
		}
	}

	// Fig. 14 step 6: the oldest remaining old day expires tomorrow.
	s.daysToAdd = removeDay(s.daysToAdd, newDay-s.cfg.W+1)
	s.lastDay = newDay
	return nil
}

// Close implements Scheme.
func (s *REINDEXPlus) Close() error { return s.closeAll(s.temp) }

func removeDay(days []int, day int) []int {
	out := days[:0]
	for _, d := range days {
		if d != day {
			out = append(out, d)
		}
	}
	return out
}
