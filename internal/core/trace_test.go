package core

import (
	"fmt"
	"testing"
)

// traceScheme starts the scheme and advances it day by day, returning a
// rendering of the constituent time-sets after each day, keyed by day.
func traceScheme(t *testing.T, s Scheme, throughDay int) map[int]string {
	t.Helper()
	if err := s.Start(); err != nil {
		t.Fatalf("Start: %v", err)
	}
	out := map[int]string{s.LastDay(): renderWave(s.Wave())}
	for d := s.LastDay() + 1; d <= throughDay; d++ {
		if err := s.Transition(d); err != nil {
			t.Fatalf("Transition(%d): %v", d, err)
		}
		out[d] = renderWave(s.Wave())
	}
	return out
}

func renderWave(w *Wave) string {
	s := ""
	for i, c := range w.Snapshot() {
		if i > 0 {
			s += " "
		}
		if c == nil {
			s += "[]"
		} else {
			s += fmt.Sprint(c.Days())
		}
	}
	return s
}

func phantom() Backend { return NewPhantomBackend(nil, nil) }

// TestTable1DEL replays Table 1: DEL with W=10, n=2.
func TestTable1DEL(t *testing.T) {
	s, err := NewDEL(Config{W: 10, N: 2}, phantom())
	if err != nil {
		t.Fatal(err)
	}
	got := traceScheme(t, s, 13)
	want := map[int]string{
		10: "[1 2 3 4 5] [6 7 8 9 10]",
		11: "[2 3 4 5 11] [6 7 8 9 10]",
		12: "[3 4 5 11 12] [6 7 8 9 10]",
		13: "[4 5 11 12 13] [6 7 8 9 10]",
	}
	for d, w := range want {
		if got[d] != w {
			t.Errorf("day %d: wave = %s, want %s", d, got[d], w)
		}
	}
}

// TestTable2REINDEX replays Table 2: REINDEX with W=10, n=2 (same
// time-sets as DEL; the difference is the rebuild).
func TestTable2REINDEX(t *testing.T) {
	s, err := NewREINDEX(Config{W: 10, N: 2}, phantom())
	if err != nil {
		t.Fatal(err)
	}
	got := traceScheme(t, s, 16)
	want := map[int]string{
		10: "[1 2 3 4 5] [6 7 8 9 10]",
		11: "[2 3 4 5 11] [6 7 8 9 10]",
		15: "[11 12 13 14 15] [6 7 8 9 10]",
		16: "[11 12 13 14 15] [7 8 9 10 16]",
	}
	for d, w := range want {
		if got[d] != w {
			t.Errorf("day %d: wave = %s, want %s", d, got[d], w)
		}
	}
}

// TestTable3WATAStar replays Table 3: WATA* with W=10, n=4.
func TestTable3WATAStar(t *testing.T) {
	s, err := NewWATAStar(Config{W: 10, N: 4}, phantom())
	if err != nil {
		t.Fatal(err)
	}
	got := traceScheme(t, s, 16)
	want := map[int]string{
		10: "[1 2 3] [4 5 6] [7 8 9] [10]",
		11: "[1 2 3] [4 5 6] [7 8 9] [10 11]",
		12: "[1 2 3] [4 5 6] [7 8 9] [10 11 12]",
		13: "[13] [4 5 6] [7 8 9] [10 11 12]",
		14: "[13 14] [4 5 6] [7 8 9] [10 11 12]",
		15: "[13 14 15] [4 5 6] [7 8 9] [10 11 12]",
		16: "[13 14 15] [16] [7 8 9] [10 11 12]",
	}
	for d, w := range want {
		if got[d] != w {
			t.Errorf("day %d: wave = %s, want %s", d, got[d], w)
		}
	}
}

// TestTable5REINDEXPlus replays Table 5: REINDEX+ with W=10, n=2,
// including the Temp index contents.
func TestTable5REINDEXPlus(t *testing.T) {
	s, err := NewREINDEXPlus(Config{W: 10, N: 2}, phantom())
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	type row struct{ wave, temp string }
	want := map[int]row{
		11: {"[2 3 4 5 11] [6 7 8 9 10]", "[11]"},
		12: {"[3 4 5 11 12] [6 7 8 9 10]", "[11 12]"},
		13: {"[4 5 11 12 13] [6 7 8 9 10]", "[11 12 13]"},
		14: {"[5 11 12 13 14] [6 7 8 9 10]", "[11 12 13 14]"},
		15: {"[11 12 13 14 15] [6 7 8 9 10]", "nil"},
		16: {"[11 12 13 14 15] [7 8 9 10 16]", "[16]"},
	}
	for d := 11; d <= 16; d++ {
		if err := s.Transition(d); err != nil {
			t.Fatalf("Transition(%d): %v", d, err)
		}
		temp := "nil"
		if s.temp != nil {
			temp = fmt.Sprint(s.temp.Days())
		}
		if w, ok := want[d]; ok {
			if got := renderWave(s.Wave()); got != w.wave {
				t.Errorf("day %d: wave = %s, want %s", d, got, w.wave)
			}
			if temp != w.temp {
				t.Errorf("day %d: temp = %s, want %s", d, temp, w.temp)
			}
		}
	}
}

// TestTable6REINDEXPlusPlus replays Table 6: REINDEX++ with W=10, n=2,
// checking the ladder rung that will be consumed next.
func TestTable6REINDEXPlusPlus(t *testing.T) {
	s, err := NewREINDEXPlusPlus(Config{W: 10, N: 2}, phantom())
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	// Day 10 ladder: T1={5}, T2={4,5}, T3={3,4,5}, T4={2,3,4,5}.
	wantLadder := []string{"[]", "[5]", "[4 5]", "[3 4 5]", "[2 3 4 5]"}
	for i, w := range wantLadder {
		if got := fmt.Sprint(s.temps[i].Days()); got != w {
			t.Errorf("day 10: T%d = %s, want %s", i, got, w)
		}
	}
	if s.tempUsed != 4 {
		t.Errorf("day 10: tempUsed = %d, want 4", s.tempUsed)
	}
	type row struct {
		wave     string
		tempUsed int
		nextRung string // contents of temps[tempUsed] after the transition
	}
	want := map[int]row{
		11: {"[2 3 4 5 11] [6 7 8 9 10]", 3, "[3 4 5 11]"},
		12: {"[3 4 5 11 12] [6 7 8 9 10]", 2, "[4 5 11 12]"},
		13: {"[4 5 11 12 13] [6 7 8 9 10]", 1, "[5 11 12 13]"},
		14: {"[5 11 12 13 14] [6 7 8 9 10]", 0, "[11 12 13 14]"},
		15: {"[11 12 13 14 15] [6 7 8 9 10]", 4, "[7 8 9 10]"},
		16: {"[11 12 13 14 15] [7 8 9 10 16]", 3, "[8 9 10 16]"},
	}
	for d := 11; d <= 16; d++ {
		if err := s.Transition(d); err != nil {
			t.Fatalf("Transition(%d): %v", d, err)
		}
		w := want[d]
		if got := renderWave(s.Wave()); got != w.wave {
			t.Errorf("day %d: wave = %s, want %s", d, got, w.wave)
		}
		if s.tempUsed != w.tempUsed {
			t.Errorf("day %d: tempUsed = %d, want %d", d, s.tempUsed, w.tempUsed)
		}
		if got := fmt.Sprint(s.temps[s.tempUsed].Days()); got != w.nextRung {
			t.Errorf("day %d: T%d = %s, want %s", d, s.tempUsed, got, w.nextRung)
		}
	}
	// Day 15 rebuilt the full ladder (Table 6's re-Initialize).
}

// TestTable7RATAStar replays Table 7: RATA* with W=10, n=4. RATA keeps a
// hard window on every day while performing WATA-style bulk deletes.
func TestTable7RATAStar(t *testing.T) {
	s, err := NewRATAStar(Config{W: 10, N: 4}, phantom())
	if err != nil {
		t.Fatal(err)
	}
	got := traceScheme(t, s, 16)
	want := map[int]string{
		10: "[1 2 3] [4 5 6] [7 8 9] [10]",
		11: "[2 3] [4 5 6] [7 8 9] [10 11]",
		12: "[3] [4 5 6] [7 8 9] [10 11 12]",
		13: "[13] [4 5 6] [7 8 9] [10 11 12]",
		14: "[13 14] [5 6] [7 8 9] [10 11 12]",
		15: "[13 14 15] [6] [7 8 9] [10 11 12]",
		16: "[13 14 15] [16] [7 8 9] [10 11 12]",
	}
	for d, w := range want {
		if got[d] != w {
			t.Errorf("day %d: wave = %s, want %s", d, got[d], w)
		}
	}
}
