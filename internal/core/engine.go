package core

import (
	"context"
	"sync"
)

// Engine is a wave's query execution pool: a counting semaphore bounding
// how many per-constituent reads run concurrently. The paper's §8
// observes that "if n matches the number of disks, indexing can be
// parallelized easily"; sizing the pool to the number of block stores
// keeps every device busy without flooding one device with interleaved
// reads, so that is the default chosen by the wave façade. A parallelism
// of 1 executes queries strictly sequentially on the caller's goroutine.
type Engine struct {
	sem chan struct{}
}

// NewEngine returns an engine running at most parallelism reads at once
// (values below 1 are clamped to 1).
func NewEngine(parallelism int) *Engine {
	if parallelism < 1 {
		parallelism = 1
	}
	return &Engine{sem: make(chan struct{}, parallelism)}
}

// Parallelism returns the pool's concurrency bound.
func (e *Engine) Parallelism() int { return cap(e.sem) }

func (e *Engine) acquire() { e.sem <- struct{}{} }
func (e *Engine) release() { <-e.sem }

// acquireCtx waits for a pool slot or for ctx cancellation; it reports
// whether the slot was acquired.
func (e *Engine) acquireCtx(ctx context.Context) bool {
	select {
	case e.sem <- struct{}{}:
		return true
	case <-ctx.Done():
		return false
	}
}

// Run executes tasks 0..n-1 on the pool and returns the first error (by
// task index). With a single task or a parallelism of 1 the tasks run
// inline on the caller's goroutine — the deterministic sequential path —
// otherwise one goroutine per task contends for the pool's slots.
func (e *Engine) Run(n int, task func(i int) error) error {
	return e.RunCtx(context.Background(), n, task)
}

// RunCtx is Run with cancellation: once ctx is done no further task
// starts (tasks waiting for a pool slot stop waiting), and the ctx error
// is reported for every task that did not run. Tasks already executing
// are not interrupted — per-constituent reads are short — so RunCtx
// returns only after every started task has finished; no pool slot is
// leaked.
func (e *Engine) RunCtx(ctx context.Context, n int, task func(i int) error) error {
	if n <= 0 {
		return nil
	}
	if n == 1 || e.Parallelism() == 1 {
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			if !e.acquireCtx(ctx) {
				return ctx.Err()
			}
			err := task(i)
			e.release()
			if err != nil {
				return err
			}
		}
		return nil
	}
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if err := ctx.Err(); err != nil {
				errs[i] = err
				return
			}
			if !e.acquireCtx(ctx) {
				errs[i] = ctx.Err()
				return
			}
			defer e.release()
			errs[i] = task(i)
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
