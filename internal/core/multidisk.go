package core

import (
	"errors"
	"sort"
	"time"

	"waveindex/internal/index"
	"waveindex/internal/simdisk"
)

// MultiDiskBackend places constituent indexes across several block
// stores — the paper's §8 direction: "if n matches the number of disks,
// indexing can be parallelized easily. Also building new constituent
// indices on separate disks avoids contention." Each new index is built
// on the least-occupied disk; shadows and packed merges stay on their
// source's disk (the swap replaces the index in place on that device).
type MultiDiskBackend struct {
	stores []simdisk.BlockStore
	opts   index.Options
	src    DataSource
	obs    Observer
}

// NewMultiDiskBackend returns a backend distributing indexes over the
// given stores. At least one store is required.
func NewMultiDiskBackend(stores []simdisk.BlockStore, opts index.Options, src DataSource, obs Observer) (*MultiDiskBackend, error) {
	if len(stores) == 0 {
		return nil, errors.New("core: multi-disk backend needs at least one store")
	}
	if obs == nil {
		obs = NopObserver{}
	}
	return &MultiDiskBackend{stores: stores, opts: opts, src: src, obs: obs}, nil
}

// pick returns the store with the least allocated bytes.
func (bk *MultiDiskBackend) pick() simdisk.BlockStore {
	best := bk.stores[0]
	bestUsed := best.Stats().UsedBlocks
	for _, s := range bk.stores[1:] {
		if u := s.Stats().UsedBlocks; u < bestUsed {
			best, bestUsed = s, u
		}
	}
	return best
}

// single returns a one-store DataBackend bound to st, sharing this
// backend's source and observer. Constituents keep using the backend of
// the store they were created on, so clones and merges stay on-device.
func (bk *MultiDiskBackend) single(st simdisk.BlockStore) *DataBackend {
	return NewDataBackend(st, bk.opts, bk.src, bk.obs)
}

// Build implements Backend.
func (bk *MultiDiskBackend) Build(days ...int) (Constituent, error) {
	return bk.single(bk.pick()).Build(days...)
}

// Empty implements Backend.
func (bk *MultiDiskBackend) Empty() (Constituent, error) {
	return bk.single(bk.pick()).Empty()
}

// BuildMany implements ParallelBuilder: one constituent per cluster,
// built concurrently with at most parallelism builds in flight, each on
// its own store. Placement is deterministic — clusters go round-robin
// over the stores in ascending (used blocks, index) order, which on
// fresh stores is exactly the sequence the serial least-used pick
// produces — and each build touches only its own store, so every store's
// charge sequence is the same at any parallelism. Day batches are
// fetched up front and operations are reported after the builds finish,
// both sequentially in cluster order: neither DataSource nor Observer
// implementations are required to be concurrency-safe.
func (bk *MultiDiskBackend) BuildMany(clusters [][]int, parallelism int) ([]Constituent, error) {
	if parallelism > len(clusters) {
		parallelism = len(clusters)
	}
	if parallelism <= 1 || len(bk.stores) == 1 {
		out := make([]Constituent, len(clusters))
		for i, cluster := range clusters {
			c, err := bk.Build(cluster...)
			if err != nil {
				for _, built := range out[:i] {
					built.Drop()
				}
				return nil, err
			}
			out[i] = c
		}
		return out, nil
	}
	batches := make([][]*index.Batch, len(clusters))
	for i, cluster := range clusters {
		bs, err := fetchBatches(bk.src, cluster)
		if err != nil {
			return nil, err
		}
		batches[i] = bs
	}
	order := make([]int, len(bk.stores))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		ua := bk.stores[order[a]].Stats().UsedBlocks
		ub := bk.stores[order[b]].Stats().UsedBlocks
		if ua != ub {
			return ua < ub
		}
		return order[a] < order[b]
	})
	disks := make([]int, len(clusters))
	homes := make([]*DataBackend, len(clusters))
	for i := range clusters {
		disks[i] = order[i%len(order)]
		homes[i] = bk.single(bk.stores[disks[i]])
	}
	outs := make([]*dataConstituent, len(clusters))
	starts := make([]time.Time, len(clusters))
	elapsed := make([]time.Duration, len(clusters))
	err := NewEngine(parallelism).Run(len(clusters), func(i int) error {
		starts[i] = time.Now()
		c, err := homes[i].buildFrom(batches[i])
		elapsed[i] = time.Since(starts[i])
		outs[i] = c
		return err
	})
	if err != nil {
		for _, c := range outs {
			if c != nil {
				c.idx.Drop()
			}
		}
		return nil, err
	}
	out := make([]Constituent, len(clusters))
	for i, c := range outs {
		bk.obs.RecordOp(OpBuild, clusters[i])
		if bo, ok := bk.obs.(BuildObserver); ok {
			bo.TraceBuild(clusters[i], disks[i], starts[i], elapsed[i])
		}
		out[i] = c
	}
	return out, nil
}

// Stores exposes the underlying stores (per-disk statistics).
func (bk *MultiDiskBackend) Stores() []simdisk.BlockStore { return bk.stores }

// DiskOf returns the index of the store a data constituent lives on, or
// -1 for non-data constituents.
func (bk *MultiDiskBackend) DiskOf(c Constituent) int {
	dc, ok := c.(*dataConstituent)
	if !ok {
		return -1
	}
	for i, s := range bk.stores {
		if dc.bk.store == s {
			return i
		}
	}
	return -1
}
