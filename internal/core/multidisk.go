package core

import (
	"errors"

	"waveindex/internal/index"
	"waveindex/internal/simdisk"
)

// MultiDiskBackend places constituent indexes across several block
// stores — the paper's §8 direction: "if n matches the number of disks,
// indexing can be parallelized easily. Also building new constituent
// indices on separate disks avoids contention." Each new index is built
// on the least-occupied disk; shadows and packed merges stay on their
// source's disk (the swap replaces the index in place on that device).
type MultiDiskBackend struct {
	stores []simdisk.BlockStore
	opts   index.Options
	src    DataSource
	obs    Observer
}

// NewMultiDiskBackend returns a backend distributing indexes over the
// given stores. At least one store is required.
func NewMultiDiskBackend(stores []simdisk.BlockStore, opts index.Options, src DataSource, obs Observer) (*MultiDiskBackend, error) {
	if len(stores) == 0 {
		return nil, errors.New("core: multi-disk backend needs at least one store")
	}
	if obs == nil {
		obs = NopObserver{}
	}
	return &MultiDiskBackend{stores: stores, opts: opts, src: src, obs: obs}, nil
}

// pick returns the store with the least allocated bytes.
func (bk *MultiDiskBackend) pick() simdisk.BlockStore {
	best := bk.stores[0]
	bestUsed := best.Stats().UsedBlocks
	for _, s := range bk.stores[1:] {
		if u := s.Stats().UsedBlocks; u < bestUsed {
			best, bestUsed = s, u
		}
	}
	return best
}

// single returns a one-store DataBackend bound to st, sharing this
// backend's source and observer. Constituents keep using the backend of
// the store they were created on, so clones and merges stay on-device.
func (bk *MultiDiskBackend) single(st simdisk.BlockStore) *DataBackend {
	return NewDataBackend(st, bk.opts, bk.src, bk.obs)
}

// Build implements Backend.
func (bk *MultiDiskBackend) Build(days ...int) (Constituent, error) {
	return bk.single(bk.pick()).Build(days...)
}

// Empty implements Backend.
func (bk *MultiDiskBackend) Empty() (Constituent, error) {
	return bk.single(bk.pick()).Empty()
}

// Stores exposes the underlying stores (per-disk statistics).
func (bk *MultiDiskBackend) Stores() []simdisk.BlockStore { return bk.stores }

// DiskOf returns the index of the store a data constituent lives on, or
// -1 for non-data constituents.
func (bk *MultiDiskBackend) DiskOf(c Constituent) int {
	dc, ok := c.(*dataConstituent)
	if !ok {
		return -1
	}
	for i, s := range bk.stores {
		if dc.bk.store == s {
			return i
		}
	}
	return -1
}
