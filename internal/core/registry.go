package core

import "fmt"

// Kind identifies a wave-index maintenance algorithm.
type Kind int

// The six algorithms of the paper.
const (
	KindDEL Kind = iota
	KindREINDEX
	KindREINDEXPlus
	KindREINDEXPlusPlus
	KindWATAStar
	KindRATAStar
)

// Kinds lists all algorithms in presentation order.
var Kinds = []Kind{KindDEL, KindREINDEX, KindREINDEXPlus, KindREINDEXPlusPlus, KindWATAStar, KindRATAStar}

func (k Kind) String() string {
	switch k {
	case KindDEL:
		return "DEL"
	case KindREINDEX:
		return "REINDEX"
	case KindREINDEXPlus:
		return "REINDEX+"
	case KindREINDEXPlusPlus:
		return "REINDEX++"
	case KindWATAStar:
		return "WATA*"
	case KindRATAStar:
		return "RATA*"
	}
	return "unknown"
}

// ParseKind resolves a scheme name (as printed by Kind.String).
func ParseKind(name string) (Kind, error) {
	for _, k := range Kinds {
		if k.String() == name {
			return k, nil
		}
	}
	return 0, fmt.Errorf("core: unknown scheme %q", name)
}

// MinN returns the smallest legal constituent count for the scheme.
func (k Kind) MinN() int {
	if k == KindWATAStar || k == KindRATAStar {
		return 2
	}
	return 1
}

// HardWindow reports whether the scheme maintains a hard window.
func (k Kind) HardWindow() bool { return k != KindWATAStar }

// NewScheme constructs the scheme of the given kind.
func NewScheme(k Kind, cfg Config, bk Backend) (Scheme, error) {
	switch k {
	case KindDEL:
		return NewDEL(cfg, bk)
	case KindREINDEX:
		return NewREINDEX(cfg, bk)
	case KindREINDEXPlus:
		return NewREINDEXPlus(cfg, bk)
	case KindREINDEXPlusPlus:
		return NewREINDEXPlusPlus(cfg, bk)
	case KindWATAStar:
		return NewWATAStar(cfg, bk)
	case KindRATAStar:
		return NewRATAStar(cfg, bk)
	}
	return nil, fmt.Errorf("core: unknown scheme kind %d", k)
}
