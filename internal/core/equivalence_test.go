package core

import (
	"fmt"
	"math/rand"
	"testing"

	"waveindex/internal/index"
	"waveindex/internal/simdisk"
)

// genDay builds a synthetic day batch with a small Zipf-ish key mix.
func genDay(day int, rng *rand.Rand) *index.Batch {
	b := &index.Batch{Day: day}
	keys := []string{"alpha", "beta", "gamma", "delta", "epsilon", "zeta", "eta", "theta"}
	n := 5 + rng.Intn(25)
	for i := 0; i < n; i++ {
		// Skew towards early keys.
		k := keys[rng.Intn(1+rng.Intn(len(keys)))]
		b.Postings = append(b.Postings, index.Posting{
			Key:   k,
			Entry: index.Entry{RecordID: uint64(day)*1000 + uint64(i), Aux: uint32(i), Day: int32(day)},
		})
	}
	return b
}

// runDataScheme starts a scheme over real data and returns the scheme and
// its source.
func newDataScheme(t *testing.T, kind Kind, w, n int, tech Technique, dir index.DirKind) (Scheme, *MemorySource, *simdisk.Store) {
	t.Helper()
	store := simdisk.NewRAM(simdisk.Config{BlockSize: 256})
	t.Cleanup(func() { store.Close() })
	src := NewMemorySource(0)
	rng := rand.New(rand.NewSource(int64(w*100 + n)))
	for d := 1; d <= 6*w+5; d++ {
		src.Put(genDay(d, rng))
	}
	bk := NewDataBackend(store, index.Options{Dir: dir, Growth: 2}, src, nil)
	s, err := NewScheme(kind, Config{W: w, N: n, Technique: tech}, bk)
	if err != nil {
		t.Fatal(err)
	}
	return s, src, store
}

// windowAnswer computes the expected probe result for key over the
// window [lo, hi] directly from the raw data.
func windowAnswer(t *testing.T, src *MemorySource, key string, lo, hi int) []index.Entry {
	t.Helper()
	var out []index.Entry
	for d := lo; d <= hi; d++ {
		b, err := src.Day(d)
		if err != nil {
			t.Fatal(err)
		}
		for _, p := range b.Postings {
			if p.Key == key {
				out = append(out, p.Entry)
			}
		}
	}
	sortEntries(out)
	return out
}

// TestSchemesAnswerIdenticalQueries runs every scheme and technique over
// the same data and checks that timed probes and scans restricted to the
// required window return exactly the ground-truth answer after every
// transition. This is the paper's core correctness claim: all wave
// indexes present the same window, however they maintain it.
func TestSchemesAnswerIdenticalQueries(t *testing.T) {
	const w, n = 7, 3
	keys := []string{"alpha", "beta", "theta", "missing"}
	for _, kind := range Kinds {
		for _, tech := range []Technique{InPlace, SimpleShadow, PackedShadow} {
			t.Run(fmt.Sprintf("%s/%s", kind, tech), func(t *testing.T) {
				s, src, _ := newDataScheme(t, kind, w, n, tech, index.HashDir)
				defer s.Close()
				if err := s.Start(); err != nil {
					t.Fatal(err)
				}
				for d := w + 1; d <= 4*w; d++ {
					if err := s.Transition(d); err != nil {
						t.Fatalf("Transition(%d): %v", d, err)
					}
					lo, hi := s.WindowStart(), s.LastDay()
					for _, key := range keys {
						got, err := s.Wave().TimedIndexProbe(key, lo, hi)
						if err != nil {
							t.Fatal(err)
						}
						want := windowAnswer(t, src, key, lo, hi)
						if fmt.Sprint(got) != fmt.Sprint(want) {
							t.Fatalf("day %d key %q: probe = %v, want %v", d, key, got, want)
						}
					}
					// Timed scan over the window counts every posting once.
					wantTotal := 0
					for day := lo; day <= hi; day++ {
						b, _ := src.Day(day)
						wantTotal += b.NumPostings()
					}
					gotTotal := 0
					if err := s.Wave().TimedSegmentScan(lo, hi, func(string, index.Entry) bool {
						gotTotal++
						return true
					}); err != nil {
						t.Fatal(err)
					}
					if gotTotal != wantTotal {
						t.Fatalf("day %d: scan visited %d entries, want %d", d, gotTotal, wantTotal)
					}
				}
			})
		}
	}
}

// TestTimedSubRangeQueries checks timed queries narrower than the window.
func TestTimedSubRangeQueries(t *testing.T) {
	s, src, _ := newDataScheme(t, KindWATAStar, 10, 4, SimpleShadow, index.BTreeDir)
	defer s.Close()
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	for d := 11; d <= 30; d++ {
		if err := s.Transition(d); err != nil {
			t.Fatal(err)
		}
	}
	// Sub-ranges inside the window [21, 30].
	for _, r := range [][2]int{{25, 27}, {21, 21}, {30, 30}, {22, 29}} {
		got, err := s.Wave().TimedIndexProbe("alpha", r[0], r[1])
		if err != nil {
			t.Fatal(err)
		}
		want := windowAnswer(t, src, "alpha", r[0], r[1])
		if fmt.Sprint(got) != fmt.Sprint(want) {
			t.Errorf("range %v: got %v, want %v", r, got, want)
		}
	}
}

// TestSoftWindowExposesExtraDays confirms WATA*'s documented behaviour:
// an untimed probe may return entries older than the required window, and
// a window-clamped timed probe filters them out.
func TestSoftWindowExposesExtraDays(t *testing.T) {
	s, src, _ := newDataScheme(t, KindWATAStar, 10, 4, InPlace, index.HashDir)
	defer s.Close()
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	sawExtra := false
	for d := 11; d <= 40; d++ {
		if err := s.Transition(d); err != nil {
			t.Fatal(err)
		}
		all, err := s.Wave().IndexProbe("alpha")
		if err != nil {
			t.Fatal(err)
		}
		clamped, err := s.Wave().TimedIndexProbe("alpha", s.WindowStart(), s.LastDay())
		if err != nil {
			t.Fatal(err)
		}
		for _, e := range all {
			if int(e.Day) < s.WindowStart() {
				sawExtra = true
			}
		}
		want := windowAnswer(t, src, "alpha", s.WindowStart(), s.LastDay())
		if fmt.Sprint(clamped) != fmt.Sprint(want) {
			t.Fatalf("day %d: clamped probe wrong", d)
		}
	}
	if !sawExtra {
		t.Error("WATA* never exposed a soft-window day to untimed probes")
	}
}

// TestParallelProbeMatchesSerial compares the §8 parallel probe with the
// serial one.
func TestParallelProbeMatchesSerial(t *testing.T) {
	s, _, _ := newDataScheme(t, KindDEL, 12, 4, SimpleShadow, index.HashDir)
	defer s.Close()
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	for d := 13; d <= 24; d++ {
		if err := s.Transition(d); err != nil {
			t.Fatal(err)
		}
	}
	for _, key := range []string{"alpha", "beta", "gamma", "missing"} {
		serial, err := s.Wave().TimedIndexProbe(key, s.WindowStart(), s.LastDay())
		if err != nil {
			t.Fatal(err)
		}
		parallel, err := s.Wave().ParallelTimedIndexProbe(key, s.WindowStart(), s.LastDay())
		if err != nil {
			t.Fatal(err)
		}
		if fmt.Sprint(serial) != fmt.Sprint(parallel) {
			t.Errorf("key %q: parallel = %v, serial = %v", key, parallel, serial)
		}
	}
}

// TestPackedShadowKeepsConstituentsPacked checks the §2.1 claim: with
// packed shadow updating, the published constituents stay packed under
// every scheme.
func TestPackedShadowKeepsConstituentsPacked(t *testing.T) {
	for _, kind := range Kinds {
		t.Run(kind.String(), func(t *testing.T) {
			s, _, _ := newDataScheme(t, kind, 8, 4, PackedShadow, index.HashDir)
			defer s.Close()
			if err := s.Start(); err != nil {
				t.Fatal(err)
			}
			for d := 9; d <= 32; d++ {
				if err := s.Transition(d); err != nil {
					t.Fatal(err)
				}
				for i, c := range s.Wave().Snapshot() {
					dc, ok := c.(*dataConstituent)
					if !ok {
						t.Fatalf("slot %d: not a data constituent", i)
					}
					if !dc.Index().Packed() {
						t.Fatalf("day %d slot %d: constituent unpacked under packed shadowing (days %v)", d, i, c.Days())
					}
				}
			}
		})
	}
}

// TestDataStorageReclaimed checks that after Close, every scheme returns
// the block store to zero occupancy — no leaked extents across a long
// run of transitions.
func TestDataStorageReclaimed(t *testing.T) {
	for _, kind := range Kinds {
		for _, tech := range []Technique{InPlace, SimpleShadow, PackedShadow} {
			t.Run(fmt.Sprintf("%s/%s", kind, tech), func(t *testing.T) {
				s, _, store := newDataScheme(t, kind, 7, 3, tech, index.HashDir)
				if err := s.Start(); err != nil {
					t.Fatal(err)
				}
				for d := 8; d <= 35; d++ {
					if err := s.Transition(d); err != nil {
						t.Fatal(err)
					}
				}
				if err := s.Close(); err != nil {
					t.Fatal(err)
				}
				if used := store.Stats().UsedBlocks; used != 0 {
					t.Errorf("leaked %d blocks after Close", used)
				}
			})
		}
	}
}

// TestMemorySourceRetention checks trimming.
func TestMemorySourceRetention(t *testing.T) {
	src := NewMemorySource(3)
	for d := 1; d <= 10; d++ {
		src.Put(&index.Batch{Day: d})
	}
	if src.Len() != 3 {
		t.Errorf("Len = %d, want 3", src.Len())
	}
	if _, err := src.Day(7); err == nil {
		t.Error("trimmed day still available")
	}
	if _, err := src.Day(10); err != nil {
		t.Errorf("newest day unavailable: %v", err)
	}
	unlimited := NewMemorySource(0)
	for d := 1; d <= 10; d++ {
		unlimited.Put(&index.Batch{Day: d})
	}
	if unlimited.Len() != 10 {
		t.Errorf("unlimited Len = %d, want 10", unlimited.Len())
	}
}
