package core

import (
	"errors"
	"fmt"
	"sync"

	"waveindex/internal/index"
)

// ErrNoData is returned when a day's batch is requested but unavailable.
var ErrNoData = errors.New("core: no data retained for day")

// DataSource supplies the postings of a given day. Schemes re-read old
// days when rebuilding clusters (REINDEX) or preparing temporary indexes
// (REINDEX+/++, RATA), so the source must retain at least the current
// window of raw data.
type DataSource interface {
	Day(day int) (*index.Batch, error)
}

// MemorySource is a DataSource backed by an in-memory map with optional
// retention trimming. It is safe for concurrent use.
type MemorySource struct {
	mu     sync.RWMutex
	byDay  map[int]*index.Batch
	retain int // keep the newest `retain` days; 0 = keep everything
	newest int
}

// NewMemorySource returns a source retaining the newest retain days
// (0 keeps all days).
func NewMemorySource(retain int) *MemorySource {
	return &MemorySource{byDay: make(map[int]*index.Batch), retain: retain}
}

// Put stores a day's batch and trims days older than the retention
// horizon.
func (m *MemorySource) Put(b *index.Batch) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.byDay[b.Day] = b
	if b.Day > m.newest {
		m.newest = b.Day
	}
	if m.retain > 0 {
		for d := range m.byDay {
			if d <= m.newest-m.retain {
				delete(m.byDay, d)
			}
		}
	}
}

// Day implements DataSource.
func (m *MemorySource) Day(day int) (*index.Batch, error) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	b, ok := m.byDay[day]
	if !ok {
		return nil, fmt.Errorf("%w: day %d", ErrNoData, day)
	}
	return b, nil
}

// Len returns the number of retained days.
func (m *MemorySource) Len() int {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return len(m.byDay)
}
