package core

import (
	"bytes"
	"fmt"
	"strings"
	"testing"

	"waveindex/internal/index"
	"waveindex/internal/simdisk"
)

// TestSaveLoadSchemeDirect round-trips every scheme through the core
// persistence layer and resumes transitions on the restored copy.
func TestSaveLoadSchemeDirect(t *testing.T) {
	for _, kind := range Kinds {
		t.Run(kind.String(), func(t *testing.T) {
			const w, n = 7, 3
			store := simdisk.NewRAM(simdisk.Config{BlockSize: 256})
			defer store.Close()
			src := NewMemorySource(0)
			for d := 1; d <= 4*w; d++ {
				src.Put(genDay(d, newRng(d)))
			}
			bk := NewDataBackend(store, index.Options{}, src, nil)
			s, err := NewScheme(kind, Config{W: w, N: n}, bk)
			if err != nil {
				t.Fatal(err)
			}
			if err := s.Start(); err != nil {
				t.Fatal(err)
			}
			for d := w + 1; d <= 2*w+1; d++ {
				if err := s.Transition(d); err != nil {
					t.Fatal(err)
				}
			}
			var buf bytes.Buffer
			if err := SaveScheme(s, &buf); err != nil {
				t.Fatalf("SaveScheme: %v", err)
			}

			store2 := simdisk.NewRAM(simdisk.Config{BlockSize: 256})
			defer store2.Close()
			bk2 := NewDataBackend(store2, index.Options{}, src, nil)
			s2, err := LoadScheme(Config{W: w, N: n}, bk2, bytes.NewReader(buf.Bytes()))
			if err != nil {
				t.Fatalf("LoadScheme: %v", err)
			}
			if s2.Name() != s.Name() || s2.LastDay() != s.LastDay() {
				t.Fatalf("restored %s lastDay=%d, want %s lastDay=%d", s2.Name(), s2.LastDay(), s.Name(), s.LastDay())
			}
			if renderWave(s2.Wave()) != renderWave(s.Wave()) {
				t.Fatalf("restored wave %s != %s", renderWave(s2.Wave()), renderWave(s.Wave()))
			}
			// Both continue identically for a full cycle.
			start, end := s.LastDay()+1, s.LastDay()+w+2
			for d := start; d <= end; d++ {
				if err := s.Transition(d); err != nil {
					t.Fatal(err)
				}
				if err := s2.Transition(d); err != nil {
					t.Fatalf("restored Transition(%d): %v", d, err)
				}
				if renderWave(s2.Wave()) != renderWave(s.Wave()) {
					t.Fatalf("day %d: waves diverged: %s vs %s", d, renderWave(s2.Wave()), renderWave(s.Wave()))
				}
				got, err := s2.Wave().TimedIndexProbe("alpha", s2.WindowStart(), s2.LastDay())
				if err != nil {
					t.Fatal(err)
				}
				want := windowAnswer(t, src, "alpha", s2.WindowStart(), s2.LastDay())
				if fmt.Sprint(got) != fmt.Sprint(want) {
					t.Fatalf("day %d: restored probe mismatch", d)
				}
			}
			s.Close()
			s2.Close()
		})
	}
}

// TestSaveSchemeRejectsPhantom: the phantom backend has no bytes to save.
func TestSaveSchemeRejectsPhantom(t *testing.T) {
	s, err := NewDEL(Config{W: 5, N: 2}, phantom())
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := SaveScheme(s, &buf); err == nil || !strings.Contains(err.Error(), "data backend") {
		t.Errorf("SaveScheme(phantom) err = %v", err)
	}
}

// TestLoadSchemeSlotMismatch: restoring into the wrong geometry fails
// cleanly.
func TestLoadSchemeSlotMismatch(t *testing.T) {
	store := simdisk.NewRAM(simdisk.Config{BlockSize: 256})
	defer store.Close()
	src := NewMemorySource(0)
	for d := 1; d <= 10; d++ {
		src.Put(genDay(d, newRng(d)))
	}
	bk := NewDataBackend(store, index.Options{}, src, nil)
	s, err := NewDEL(Config{W: 6, N: 3}, bk)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := SaveScheme(s, &buf); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadScheme(Config{W: 6, N: 2}, bk, bytes.NewReader(buf.Bytes())); err == nil {
		t.Error("slot-count mismatch accepted")
	}
	if _, err := LoadScheme(Config{W: 6, N: 3}, bk, strings.NewReader("garbage")); err == nil {
		t.Error("garbage stream accepted")
	}
}

// TestSourceSaveLoadDirect round-trips a MemorySource.
func TestSourceSaveLoadDirect(t *testing.T) {
	src := NewMemorySource(5)
	for d := 1; d <= 8; d++ {
		src.Put(genDay(d, newRng(d)))
	}
	var buf bytes.Buffer
	if err := SaveSource(src, &buf); err != nil {
		t.Fatal(err)
	}
	got, err := LoadSource(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != src.Len() {
		t.Fatalf("restored %d days, want %d", got.Len(), src.Len())
	}
	for d := 4; d <= 8; d++ {
		a, err1 := src.Day(d)
		b, err2 := got.Day(d)
		if err1 != nil || err2 != nil {
			t.Fatalf("day %d: %v %v", d, err1, err2)
		}
		if fmt.Sprint(a.Postings) != fmt.Sprint(b.Postings) {
			t.Fatalf("day %d postings diverged", d)
		}
	}
	// Retention behaviour preserved: adding a new day trims the oldest.
	got.Put(genDay(9, newRng(9)))
	if _, err := got.Day(4); err == nil {
		t.Error("restored source lost its retention policy")
	}
	if _, err := LoadSource(strings.NewReader("junk")); err == nil {
		t.Error("garbage source accepted")
	}
}

// TestSchemeSurface covers the trivial per-scheme accessors uniformly.
func TestSchemeSurface(t *testing.T) {
	wantNames := map[Kind]string{
		KindDEL: "DEL", KindREINDEX: "REINDEX", KindREINDEXPlus: "REINDEX+",
		KindREINDEXPlusPlus: "REINDEX++", KindWATAStar: "WATA*", KindRATAStar: "RATA*",
	}
	for _, k := range Kinds {
		n := 3
		if k.MinN() > n {
			n = k.MinN()
		}
		s, err := NewScheme(k, Config{W: 9, N: n}, phantom())
		if err != nil {
			t.Fatal(err)
		}
		if s.Name() != wantNames[k] {
			t.Errorf("Name = %q, want %q", s.Name(), wantNames[k])
		}
		if s.HardWindow() != k.HardWindow() {
			t.Errorf("%v: HardWindow mismatch between scheme and kind", k)
		}
		if err := s.Start(); err != nil {
			t.Fatal(err)
		}
		for d := 10; d <= 20; d++ {
			if err := s.Transition(d); err != nil {
				t.Fatal(err)
			}
		}
		if ts := s.TempSizeBytes(); ts < 0 {
			t.Errorf("%v: TempSizeBytes = %d", k, ts)
		}
		switch k {
		case KindREINDEXPlusPlus, KindRATAStar:
			// Ladder schemes hold temps mid-cycle most of the time.
		case KindDEL, KindREINDEX, KindWATAStar:
			if s.TempSizeBytes() != 0 {
				t.Errorf("%v: TempSizeBytes = %d, want 0", k, s.TempSizeBytes())
			}
		}
		if err := s.Close(); err != nil {
			t.Fatal(err)
		}
		// Close is idempotent at the scheme level.
		if err := s.Close(); err != nil {
			t.Errorf("%v: second Close: %v", k, err)
		}
	}
}
