package core

// RATAStar is RATA* (§4.3, Fig. 17): WATA* augmented with a ladder of
// temporary indexes over the currently dying cluster, so the expired
// days can be "deleted" each day by renaming a pre-built temp over the
// dying constituent. The window is hard, transitions take the same time
// as WATA* (one add, or one 1-day build), and no deletion code is
// needed; the ladder preparation is pre-computation.
type RATAStar struct {
	*base
	zs       []int // underlying WATA* size bookkeeping
	last     int
	temps    []Constituent // ladder over the dying cluster, rung i = i newest live days
	tempUsed int
}

// NewRATAStar returns a RATA* scheme. RATA requires n >= 2 like WATA.
func NewRATAStar(cfg Config, bk Backend) (*RATAStar, error) {
	b, err := newBase(cfg, bk, true)
	if err != nil {
		return nil, err
	}
	return &RATAStar{base: b}, nil
}

// Name implements Scheme.
func (s *RATAStar) Name() string { return "RATA*" }

// HardWindow implements Scheme.
func (s *RATAStar) HardWindow() bool { return true }

// TempSizeBytes implements Scheme.
func (s *RATAStar) TempSizeBytes() int64 { return sumSizes(s.temps...) }

// initLadder prepares temporaries over the dying cluster minus its oldest
// day (Fig. 17 Initialize): rung m holds the m newest of those days, so
// renaming rung tempUsed, tempUsed-1, ... over the dying constituent
// simulates deleting one expired day per day.
func (s *RATAStar) initLadder(days []int) error {
	s.temps = []Constituent{nil} // rung 0 unused: the last rename precedes ThrowAway
	if len(days) > 0 {
		first, err := s.bk.Build(days[len(days)-1])
		if err != nil {
			return err
		}
		s.temps = append(s.temps, first)
		for m := 2; m <= len(days); m++ {
			next, err := s.deriveFrom(s.temps[m-1], []int{days[len(days)-m]})
			if err != nil {
				return err
			}
			s.temps = append(s.temps, next)
		}
	}
	s.tempUsed = len(days)
	return nil
}

func (s *RATAStar) dropLadder() error {
	var first error
	for _, t := range s.temps {
		if t != nil {
			if err := t.Drop(); err != nil && first == nil {
				first = err
			}
		}
	}
	s.temps = nil
	return first
}

// Start implements Scheme.
func (s *RATAStar) Start() error {
	w := WATAStar{base: s.base}
	if err := w.startWATA(); err != nil {
		return err
	}
	s.zs, s.last = w.zs, w.last
	dying := s.wave.Get(0).Days()
	return s.initLadder(dying[1:])
}

func (s *RATAStar) sumOther(j int) int {
	sum := 0
	for i, z := range s.zs {
		if i != j {
			sum += z
		}
	}
	return sum
}

// Transition implements Scheme.
func (s *RATAStar) Transition(newDay int) error {
	if err := s.checkTransition(newDay); err != nil {
		return err
	}
	s.cfg.Observer.BeginTransition(newDay)
	if err := s.crash(CPBegin); err != nil {
		return err
	}
	expired := newDay - s.cfg.W
	j := s.ownerOf(expired)
	if j >= 0 && s.sumOther(j) == s.cfg.W-1 {
		// ThrowAway day: like WATA*, then rebuild the ladder for the next
		// dying cluster.
		if err := s.wave.SetRetire(j, nil); err != nil {
			return err
		}
		if err := s.crash(CPRataThrown); err != nil {
			s.wave.MarkBroken(j)
			return err
		}
		markPhase(s.cfg.Observer, PhaseTransition)
		fresh, err := s.bk.Build(newDay)
		if err != nil {
			s.wave.MarkBroken(j)
			return err
		}
		if err := s.crash(CPRataBuilt); err != nil {
			fresh.Drop()
			s.wave.MarkBroken(j)
			return err
		}
		s.wave.Set(j, fresh)
		s.cfg.Observer.Publish(newDay)
		s.zs[j] = 1
		s.last = j
		if err := s.dropLadder(); err != nil {
			return err
		}
		if err := s.crash(CPRataLadder); err != nil {
			return err
		}
		j2 := s.ownerOf(newDay - s.cfg.W + 1)
		dying := s.wave.Get(j2).Days()
		if err := s.initLadder(dying[1:]); err != nil {
			return err
		}
	} else {
		// Wait day: append the new day like WATA*, then simulate deleting
		// the expired day by renaming the pre-built rung over slot j.
		if err := s.transitionUpdate(s.last, nil, []int{newDay}, newDay); err != nil {
			return err
		}
		s.zs[s.last]++
		if err := s.crash(CPRataRename); err != nil {
			return err
		}
		rung := s.temps[s.tempUsed]
		s.temps[s.tempUsed] = nil
		s.tempUsed--
		if err := s.wave.SetRetire(j, rung); err != nil {
			return err
		}
	}
	s.lastDay = newDay
	return nil
}

// Close implements Scheme.
func (s *RATAStar) Close() error {
	err := s.closeAll(s.temps...)
	s.temps = nil
	return err
}
