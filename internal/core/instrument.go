package core

import (
	"context"
	"time"

	"waveindex/internal/metrics"
)

// This file is the core's observability surface: per-query engine
// counters (QueryMetrics), structured span events (Tracer/TraceEvent),
// and an Observer that converts the schemes' maintenance-operation
// stream into per-phase wall-clock timings (MetricsObserver). Everything
// here is nil-safe — an uninstrumented wave records nothing and pays one
// nil check per query.

// QueryMetrics holds the engine-level instrumentation handles of one
// wave. Handles may be nil (no-op); the zero value records nothing.
type QueryMetrics struct {
	// Constituents counts constituents touched by queries (the paper's
	// "indexes accessed per TimedIndexProbe" term).
	Constituents *metrics.Counter
	// Workers observes the worker count each parallel query ran with:
	// min(engine parallelism, qualifying constituents).
	Workers *metrics.Histogram
	// MergeDepth observes the stream count of each k-way merged scan.
	MergeDepth *metrics.Histogram
	// EarlyStops counts scans stopped early by the visitor returning
	// false.
	EarlyStops *metrics.Counter
}

// TraceEvent is one structured span emitted by the engine, a scheme
// transition, or snapshot persistence. Fields irrelevant to a Kind are
// zero.
type TraceEvent struct {
	// Kind names the span: "probe", "probe.constituent", "mprobe",
	// "mprobe.constituent", "scan", "scan.constituent",
	// "transition.pre", "transition.work", "transition.post",
	// "snapshot.save", "snapshot.load", and — from the journaled
	// wrapper — "journal.checkpoint" and "journal.recovery" (Day is
	// the last day covered; Ops the replayed-day count on recovery).
	Kind string
	// Start is when the span began; Duration its wall-clock length.
	Start    time.Time
	Duration time.Duration
	// Key is the probed search value ("" for scans); Keys the batch size
	// of a multi-probe.
	Key  string
	Keys int
	// From and To delimit the queried day range.
	From, To int
	// Constituent is the wave slot of a per-constituent span (-1 for
	// whole-query and transition spans); Constituents the number of
	// qualifying constituents of a whole-query span.
	Constituent  int
	Constituents int
	// Entries counts the entries returned or visited.
	Entries int
	// Day is the transition's new day; Ops the operation count of a
	// transition phase span.
	Day int
	Ops int
	// TraceID is the caller-supplied trace ID carried by the query's
	// context (see WithTraceID); "" when the query was not traced.
	// Transition and snapshot spans have no trace ID.
	TraceID string
	// Shard labels spans produced inside a shard router: 1-based shard
	// number, 0 for an unsharded index. Filled by the router's per-shard
	// tracer wrapper, never by the engine itself.
	Shard int
	// Err is the span's error, if it failed.
	Err error
}

// traceIDKey keys the trace ID carried in a query context.
type traceIDKey struct{}

// WithTraceID returns a context whose queries are stamped with the given
// wire-level trace ID: every span they emit and every slow-query-log
// entry they produce carries it, so a client-chosen ID can be followed
// from the wire through the engine into exported traces. An empty id
// returns ctx unchanged.
func WithTraceID(ctx context.Context, id string) context.Context {
	if id == "" {
		return ctx
	}
	return context.WithValue(ctx, traceIDKey{}, id)
}

// TraceIDFrom returns the trace ID carried by ctx, or "" if none.
func TraceIDFrom(ctx context.Context) string {
	if ctx == nil {
		return ""
	}
	id, _ := ctx.Value(traceIDKey{}).(string)
	return id
}

// Tracer receives span events. Implementations must be safe for
// concurrent use: query spans are emitted from query goroutines while
// transition spans come from the maintenance goroutine.
type Tracer interface {
	TraceEvent(ev TraceEvent)
}

// emit sends ev to tr if a tracer is wired.
func emit(tr Tracer, ev TraceEvent) {
	if tr != nil {
		tr.TraceEvent(ev)
	}
}

// SetInstrumentation wires query metrics and a tracer into the wave.
// Either may be nil. Queries already in flight keep the instrumentation
// they started with.
func (w *Wave) SetInstrumentation(qm *QueryMetrics, tr Tracer) {
	w.mu.Lock()
	if qm != nil {
		w.qm = *qm
	} else {
		w.qm = QueryMetrics{}
	}
	w.tracer = tr
	w.mu.Unlock()
}

// instrumentation returns the wave's current instrumentation handles.
func (w *Wave) instrumentation() (QueryMetrics, Tracer) {
	w.mu.RLock()
	defer w.mu.RUnlock()
	return w.qm, w.tracer
}

// TransitionMetrics holds the maintenance-side instrumentation handles a
// MetricsObserver records into. Handles may be nil (no-op).
type TransitionMetrics struct {
	// Transitions counts BeginTransition events (Start counts as day 0).
	Transitions *metrics.Counter
	// Ops counts maintenance operations by kind; index by OpKind.
	Ops [6]*metrics.Counter
	// OpDays counts the day-arguments of maintenance operations — the
	// paper's per-day work attribution (e.g. REINDEX rebuilding W/n days
	// charges W/n here per transition).
	OpDays *metrics.Counter
	// PreUS, WorkUS, and PostUS observe the wall-clock microseconds of
	// the paper's three transition phases: pre-computation, the critical
	// path from new-day arrival to publish, and post-work.
	PreUS, WorkUS, PostUS *metrics.Histogram
	// BuildUS observes the wall-clock microseconds of individual
	// constituent builds reported by parallel-building backends.
	BuildUS *metrics.Histogram
}

// NewTransitionMetrics binds the standard transition metric names on reg
// (nil-safe: a nil registry yields all-no-op handles).
func NewTransitionMetrics(reg *metrics.Registry) TransitionMetrics {
	tm := TransitionMetrics{
		Transitions: reg.Counter("transition_total"),
		OpDays:      reg.Counter("transition_op_days_total"),
		PreUS:       reg.Histogram("transition_pre_us"),
		WorkUS:      reg.Histogram("transition_work_us"),
		PostUS:      reg.Histogram("transition_post_us"),
		BuildUS:     reg.Histogram("transition_build_us"),
	}
	for k := OpBuild; k <= OpDropIndex; k++ {
		tm.Ops[k] = reg.Counter("transition_op_" + k.String() + "_total")
	}
	return tm
}

// MetricsObserver is an Observer that times the three phases of every
// transition (§5's pre-computation / transition / post-work split) and
// counts maintenance operations, recording into TransitionMetrics and
// emitting transition.{pre,work,post} trace spans. Like all observers it
// is driven from the single maintenance goroutine.
type MetricsObserver struct {
	m      TransitionMetrics
	tracer Tracer
	now    func() time.Time

	active     bool
	newDay     int
	phase      Phase
	phaseStart time.Time
	phaseOps   int
}

// NewMetricsObserver returns an observer recording into m and emitting
// spans to tr (tr may be nil).
func NewMetricsObserver(m TransitionMetrics, tr Tracer) *MetricsObserver {
	return &MetricsObserver{m: m, tracer: tr, now: time.Now}
}

// phaseKind maps a phase to its span kind and histogram.
func (o *MetricsObserver) phaseKind() (string, *metrics.Histogram) {
	switch o.phase {
	case PhasePre:
		return "transition.pre", o.m.PreUS
	case PhaseTransition:
		return "transition.work", o.m.WorkUS
	default:
		return "transition.post", o.m.PostUS
	}
}

// closePhase records the running phase's duration and op count, then
// restarts the clock for the next phase.
func (o *MetricsObserver) closePhase() {
	now := o.now()
	d := now.Sub(o.phaseStart)
	kind, hist := o.phaseKind()
	hist.Observe(d.Microseconds())
	emit(o.tracer, TraceEvent{
		Kind: kind, Start: o.phaseStart, Duration: d,
		Day: o.newDay, Ops: o.phaseOps, Constituent: -1,
	})
	o.phaseStart = now
	o.phaseOps = 0
}

// BeginTransition implements Observer.
func (o *MetricsObserver) BeginTransition(newDay int) {
	if o.active {
		o.closePhase() // the previous transition's post-work ends here
	}
	o.active = true
	o.newDay = newDay
	o.phase = PhasePre
	o.phaseStart = o.now()
	o.phaseOps = 0
	o.m.Transitions.Inc()
}

// RecordOp implements Observer. The phase flips from pre-computation to
// transition work at the first operation touching the new day — the §5
// attribution rule shared with Recorder.
func (o *MetricsObserver) RecordOp(kind OpKind, days []int) {
	if !o.active {
		return
	}
	if o.phase == PhasePre && o.newDay != 0 && containsDay(days, o.newDay) {
		o.closePhase()
		o.phase = PhaseTransition
	}
	o.phaseOps++
	if kind >= OpBuild && kind <= OpDropIndex {
		o.m.Ops[kind].Inc()
	}
	o.m.OpDays.Add(int64(len(days)))
}

// MarkPhase implements PhaseObserver: an explicit pre-computation →
// transition-work boundary from the scheme. It moves the boundary
// earlier than the op-stream heuristic would place it; once the phase
// has flipped, both the marks and the heuristic are no-ops.
func (o *MetricsObserver) MarkPhase(p Phase) {
	if !o.active || p != PhaseTransition || o.phase != PhasePre || o.newDay == 0 {
		return
	}
	o.closePhase()
	o.phase = PhaseTransition
}

// TraceBuild implements BuildObserver: each concurrent constituent build
// becomes a transition.build span and a BuildUS observation.
func (o *MetricsObserver) TraceBuild(days []int, disk int, start time.Time, elapsed time.Duration) {
	o.m.BuildUS.Observe(elapsed.Microseconds())
	ev := TraceEvent{
		Kind: "transition.build", Start: start, Duration: elapsed,
		Day: o.newDay, Ops: 1, Constituent: disk,
	}
	if len(days) > 0 {
		ev.From, ev.To = days[0], days[len(days)-1]
	}
	emit(o.tracer, ev)
}

// Publish implements Observer: the critical path ends when newDay
// becomes queryable.
func (o *MetricsObserver) Publish(newDay int) {
	if !o.active || newDay != o.newDay {
		return
	}
	o.closePhase()
	o.phase = PhasePost
}

// Flush closes the currently running phase (normally the last
// transition's post-work); call it before reading final phase timings.
func (o *MetricsObserver) Flush() {
	if o.active {
		o.closePhase()
		o.active = false
	}
}

// FanoutObserver replicates events to several observers — e.g. a
// MetricsObserver plus a Recorder.
type FanoutObserver []Observer

// BeginTransition implements Observer.
func (f FanoutObserver) BeginTransition(newDay int) {
	for _, o := range f {
		o.BeginTransition(newDay)
	}
}

// RecordOp implements Observer.
func (f FanoutObserver) RecordOp(kind OpKind, days []int) {
	for _, o := range f {
		o.RecordOp(kind, days)
	}
}

// Publish implements Observer.
func (f FanoutObserver) Publish(newDay int) {
	for _, o := range f {
		o.Publish(newDay)
	}
}

// MarkPhase implements PhaseObserver, forwarding to members that
// understand explicit phase boundaries.
func (f FanoutObserver) MarkPhase(p Phase) {
	for _, o := range f {
		if po, ok := o.(PhaseObserver); ok {
			po.MarkPhase(p)
		}
	}
}

// TraceBuild implements BuildObserver, forwarding to members that
// record per-build timings.
func (f FanoutObserver) TraceBuild(days []int, disk int, start time.Time, elapsed time.Duration) {
	for _, o := range f {
		if bo, ok := o.(BuildObserver); ok {
			bo.TraceBuild(days, disk, start, elapsed)
		}
	}
}
