// Crash points: named abort sites inside the six maintenance algorithms.
// A chaos test arms a point via a CrashSet in the scheme's Config; when
// the transition reaches the armed point it aborts with an error wrapping
// ErrInjectedCrash, leaving the in-memory scheme in whatever torn state
// the algorithm was in. Recovery then has to prove it can restore a clean
// pre- or post-transition wave from the journal, no matter which point
// fired. The CrashPoints registry enumerates which points a given
// (algorithm, update technique) pair can actually reach, so tests can
// cover every site without guessing.
package core

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
)

// ErrInjectedCrash is the root of every crash-point abort; test with
// errors.Is.
var ErrInjectedCrash = errors.New("core: injected crash")

// Crash point names. Shared points live in the helpers every scheme uses;
// scheme-specific points mark the steps between which a real crash would
// leave distinct torn states.
const (
	// CPBegin fires at the top of every Transition, after validation but
	// before any index work.
	CPBegin = "transition.begin"
	// CPUpdateDeleted fires between the in-place delete and the in-place
	// add: the live constituent is missing the expired day and does not
	// yet have the new one.
	CPUpdateDeleted = "update.deleted"
	// CPUpdateApplied fires after an in-place update mutated the live
	// constituent but before the day is published.
	CPUpdateApplied = "update.applied"
	// CPUpdateCloned fires after a simple-shadow clone was built and
	// updated, before it is swapped in.
	CPUpdateCloned = "update.cloned"
	// CPUpdateMerged fires after a packed-shadow merge was built, before
	// the swap.
	CPUpdateMerged = "update.merged"
	// CPPublishBefore fires inside publishSwap just before the new
	// constituent is installed.
	CPPublishBefore = "publish.before"
	// CPPublishAfter fires after the swap and retirement completed but
	// before the transition's remaining bookkeeping runs.
	CPPublishAfter = "publish.after"

	// CPReindexBuilt fires after REINDEX built the replacement cluster.
	CPReindexBuilt = "reindex.built"

	// CPRxPlusTempBuilt fires after REINDEX+ built a fresh Temp on the
	// first day of a rebuild cycle.
	CPRxPlusTempBuilt = "reindex+.temp-built"
	// CPRxPlusDerived fires after REINDEX+ derived the constituent
	// replacement from Temp.
	CPRxPlusDerived = "reindex+.derived"
	// CPRxPlusPromoted fires on the last day of a REINDEX+ cycle, before
	// Temp absorbs the new day and is promoted.
	CPRxPlusPromoted = "reindex+.promoted"

	// CPRxPPPromoted fires after REINDEX++ promoted a ladder rung, before
	// the ladder bookkeeping that follows.
	CPRxPPPromoted = "reindex++.promoted"
	// CPRxPPLadder fires at a cycle boundary after the old ladder was
	// dropped and before the new one is built: no ladder exists.
	CPRxPPLadder = "reindex++.ladder-rebuild"
	// CPRxPPRung fires mid-cycle after the consumed rung was published,
	// before the lower rung absorbs the day's data.
	CPRxPPRung = "reindex++.rung-consumed"

	// CPWataThrown fires after WATA* threw a fully-expired constituent
	// away and before its replacement is built: the slot is empty.
	CPWataThrown = "wata.thrown"
	// CPWataBuilt fires after WATA* built the replacement, before it is
	// installed.
	CPWataBuilt = "wata.built"

	// CPRataThrown / CPRataBuilt mirror the WATA* points on RATA*'s
	// throw-away days.
	CPRataThrown = "rata.thrown"
	CPRataBuilt  = "rata.built"
	// CPRataRename fires on a RATA* wait day after the new day was
	// appended but before the pre-built rung is renamed over the dying
	// constituent.
	CPRataRename = "rata.rename"
	// CPRataLadder fires at a RATA* cycle boundary between dropping the
	// consumed ladder and building the next one.
	CPRataLadder = "rata.ladder-rebuild"
)

// CrashPlan is one armed crash point. It fires once, on the nth visit it
// was armed for, and stays inert afterwards so recovery and continued
// operation run past the point unharmed.
type CrashPlan struct {
	point string
	after int64
	seen  atomic.Int64
	fired atomic.Int64
}

// Fired reports whether the plan aborted a transition.
func (p *CrashPlan) Fired() bool { return p.fired.Load() > 0 }

// Seen returns how many times execution reached the plan's point.
func (p *CrashPlan) Seen() int64 { return p.seen.Load() }

// CrashSet arms crash points for a scheme. The zero value of a nil
// pointer is inert: schemes consult it on every step, and an unarmed set
// costs one nil check.
type CrashSet struct {
	mu    sync.Mutex
	armed map[string]*CrashPlan
}

// NewCrashSet returns an empty crash set.
func NewCrashSet() *CrashSet { return &CrashSet{armed: map[string]*CrashPlan{}} }

// Arm schedules a one-shot abort at the first visit of the named point,
// replacing any previous plan for it.
func (cs *CrashSet) Arm(point string) *CrashPlan { return cs.ArmAt(point, 0) }

// ArmAt schedules a one-shot abort at the (n+1)th visit of the named
// point.
func (cs *CrashSet) ArmAt(point string, n int) *CrashPlan {
	p := &CrashPlan{point: point, after: int64(n)}
	cs.mu.Lock()
	cs.armed[point] = p
	cs.mu.Unlock()
	return p
}

// Disarm removes the plan for the named point.
func (cs *CrashSet) Disarm(point string) {
	cs.mu.Lock()
	delete(cs.armed, point)
	cs.mu.Unlock()
}

// at reports whether the named point should abort the current transition.
func (cs *CrashSet) at(point string) error {
	if cs == nil {
		return nil
	}
	cs.mu.Lock()
	p := cs.armed[point]
	cs.mu.Unlock()
	if p == nil {
		return nil
	}
	if p.seen.Add(1)-1 == p.after {
		p.fired.Add(1)
		return fmt.Errorf("crash point %q: %w", point, ErrInjectedCrash)
	}
	return nil
}

// crash consults the scheme's crash set at the named point.
func (b *base) crash(point string) error { return b.cfg.Crash.at(point) }

// CrashPoints returns the crash points reachable by the given algorithm
// under the given update technique, assuming multi-day clusters (the
// chaos tests use geometries where every listed point is hit within a few
// window lengths of transitions).
func CrashPoints(k Kind, t Technique) []string {
	pts := []string{CPBegin}
	// Points inside transitionUpdate, used by DEL always and by
	// WATA*/RATA* on wait days.
	usesUpdate := k == KindDEL || k == KindWATAStar || k == KindRATAStar
	if usesUpdate {
		switch t {
		case InPlace:
			if k == KindDEL {
				pts = append(pts, CPUpdateDeleted)
			}
			pts = append(pts, CPUpdateApplied)
		case SimpleShadow:
			pts = append(pts, CPUpdateCloned)
		case PackedShadow:
			pts = append(pts, CPUpdateMerged)
		}
	}
	// publishSwap runs for every REINDEX-family transition regardless of
	// technique, and for DEL/WATA*/RATA* only via transitionUpdate's
	// shadow paths.
	if k == KindREINDEX || k == KindREINDEXPlus || k == KindREINDEXPlusPlus ||
		(usesUpdate && t != InPlace) {
		pts = append(pts, CPPublishBefore, CPPublishAfter)
	}
	switch k {
	case KindREINDEX:
		pts = append(pts, CPReindexBuilt)
	case KindREINDEXPlus:
		pts = append(pts, CPRxPlusTempBuilt, CPRxPlusDerived, CPRxPlusPromoted)
	case KindREINDEXPlusPlus:
		pts = append(pts, CPRxPPPromoted, CPRxPPLadder, CPRxPPRung)
	case KindWATAStar:
		pts = append(pts, CPWataThrown, CPWataBuilt)
	case KindRATAStar:
		pts = append(pts, CPRataThrown, CPRataBuilt, CPRataRename, CPRataLadder)
	}
	return pts
}
