package core

import (
	"errors"
	"fmt"
	"testing"

	"waveindex/internal/index"
	"waveindex/internal/simdisk"
)

// TestTransitionFailurePropagates injects store faults at varying depths
// into transitions of every scheme and checks (1) the error surfaces and
// (2) with shadow updating, the published wave remains fully queryable —
// the half-built replacement never becomes visible.
func TestTransitionFailurePropagates(t *testing.T) {
	boom := errors.New("injected disk fault")
	for _, kind := range Kinds {
		for _, op := range []simdisk.Op{simdisk.OpAlloc, simdisk.OpWrite, simdisk.OpRead} {
			t.Run(fmt.Sprintf("%s/%s", kind, op), func(t *testing.T) {
				const w, n = 8, 4
				store := simdisk.NewRAM(simdisk.Config{BlockSize: 256})
				defer store.Close()
				src := NewMemorySource(0)
				for d := 1; d <= 3*w; d++ {
					src.Put(genDay(d, newRng(d)))
				}
				bk := NewDataBackend(store, index.Options{}, src, nil)
				s, err := NewScheme(kind, Config{W: w, N: n, Technique: SimpleShadow}, bk)
				if err != nil {
					t.Fatal(err)
				}
				defer s.Close()
				if err := s.Start(); err != nil {
					t.Fatal(err)
				}
				// Advance into steady state, then arm the fault.
				for d := w + 1; d <= w+4; d++ {
					if err := s.Transition(d); err != nil {
						t.Fatal(err)
					}
				}
				preWave := renderWave(s.Wave())
				store.FailAfter(op, 1, boom)
				err = s.Transition(s.LastDay() + 1)
				store.FailAfter(op, 0, nil) // disarm
				if !s.Wave().queryable(t) {
					t.Fatalf("wave unqueryable after fault (err=%v)", err)
				}
				if err == nil {
					// Fault may have landed after the scheme's last store op
					// for this transition; nothing to check.
					return
				}
				if !errors.Is(err, boom) {
					t.Fatalf("Transition err = %v, want wrapped injected fault", err)
				}
				// The published wave must still answer probes for days that
				// were visible before the failed transition.
				if got := renderWave(s.Wave()); got == "" {
					t.Errorf("wave emptied by failed transition (was %s)", preWave)
				}
				for _, c := range s.Wave().Snapshot() {
					if c == nil {
						continue
					}
					sr := c.(Searcher)
					if _, perr := sr.Probe("alpha", 1, 1<<29); perr != nil && !errors.Is(perr, boom) {
						t.Errorf("probe after failure: %v", perr)
					}
				}
			})
		}
	}
}

// queryable reports whether every constituent answers a probe.
func (w *Wave) queryable(t *testing.T) bool {
	t.Helper()
	for _, c := range w.Snapshot() {
		if c == nil {
			continue
		}
		s, ok := c.(Searcher)
		if !ok {
			return false
		}
		if _, err := s.Probe("alpha", 1, 1<<29); err != nil {
			return false
		}
	}
	return true
}

// TestOutOfSpaceSurfaces runs a scheme on a store too small for its
// steady state and checks ErrOutOfSpace surfaces as a clean error.
func TestOutOfSpaceSurfaces(t *testing.T) {
	store := simdisk.NewRAM(simdisk.Config{BlockSize: 256, CapacityBlocks: 11})
	defer store.Close()
	src := NewMemorySource(0)
	for d := 1; d <= 40; d++ {
		src.Put(genDay(d, newRng(d)))
	}
	bk := NewDataBackend(store, index.Options{}, src, nil)
	s, err := NewREINDEX(Config{W: 8, N: 2}, bk)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	err = s.Start()
	for d := 9; err == nil && d <= 40; d++ {
		err = s.Transition(d)
	}
	if !errors.Is(err, simdisk.ErrOutOfSpace) {
		t.Fatalf("err = %v, want ErrOutOfSpace eventually", err)
	}
}
