package core

import (
	"container/list"
	"sync"

	"waveindex/internal/index"
)

// ResultCache memoizes per-constituent query results — probe buckets and
// scan-derived aggregates — keyed by the constituent's generation. A
// generation is stamped by the wave whenever a slot's contents change
// (publish, retire-swap, in-place mutation, broken marking), so an entry
// can never be served against a constituent other than the exact
// immutable version it was computed from: transitions that rebuild only
// some constituents (DEL, WATA*) leave the other generations — and their
// cached results — intact, while wholesale rebuilds (REINDEX) move every
// generation and thus empty the cache.
//
// The cache is a bounded LRU whose capacity is measured in result rows
// (an entry costs max(1, rows it holds)), so one huge probe bucket cannot
// masquerade as a single cheap entry. All methods are safe for concurrent
// use and are no-ops on a nil receiver.
type ResultCache struct {
	mu          sync.Mutex
	cap         int64 // cost capacity in rows
	used        int64
	entries     map[resKey]*list.Element
	lru         *list.List // front = most recent; value = *resEntry
	byGen       map[uint64]map[resKey]struct{}
	hits        int64
	misses      int64
	evictions   int64
	invalidated int64
}

// Result kinds. The kind is part of the key so a probe for key "" and an
// aggregate over the same range cannot collide.
const (
	resProbe uint8 = iota + 1
	resCount
	resDayCounts
	resKeyCounts
)

type resKey struct {
	gen    uint64
	kind   uint8
	key    string // probe key; empty for aggregates
	t1, t2 int
}

type resEntry struct {
	key  resKey
	cost int64

	probe []index.Entry
	count int
	days  map[int]int
	keys  map[string]int
}

// NewResultCache returns a cache bounded to capRows result rows, or nil
// (a disabled cache) when capRows <= 0.
func NewResultCache(capRows int) *ResultCache {
	if capRows <= 0 {
		return nil
	}
	return &ResultCache{
		cap:     int64(capRows),
		entries: make(map[resKey]*list.Element),
		lru:     list.New(),
		byGen:   make(map[uint64]map[resKey]struct{}),
	}
}

// Enabled reports whether the cache stores anything.
func (rc *ResultCache) Enabled() bool { return rc != nil }

// ResultCacheStats reports cache effectiveness and occupancy.
type ResultCacheStats struct {
	Hits        int64
	Misses      int64
	Evictions   int64
	Invalidated int64 // entries purged by generation invalidation
	Entries     int64
	CostUsed    int64
	CostCap     int64
}

// Stats returns a snapshot of the cache's counters (zero on nil).
func (rc *ResultCache) Stats() ResultCacheStats {
	if rc == nil {
		return ResultCacheStats{}
	}
	rc.mu.Lock()
	defer rc.mu.Unlock()
	return ResultCacheStats{
		Hits:        rc.hits,
		Misses:      rc.misses,
		Evictions:   rc.evictions,
		Invalidated: rc.invalidated,
		Entries:     int64(len(rc.entries)),
		CostUsed:    rc.used,
		CostCap:     rc.cap,
	}
}

// get returns the entry for k, counting a hit or miss. Caller must not
// retain the returned *resEntry past rc.mu.
func (rc *ResultCache) get(k resKey) (*resEntry, bool) {
	el, ok := rc.entries[k]
	if !ok {
		rc.misses++
		return nil, false
	}
	rc.lru.MoveToFront(el)
	rc.hits++
	return el.Value.(*resEntry), true
}

// removeLocked unlinks el from every structure. Caller holds rc.mu.
func (rc *ResultCache) removeLocked(el *list.Element) {
	e := el.Value.(*resEntry)
	rc.lru.Remove(el)
	delete(rc.entries, e.key)
	rc.used -= e.cost
	if keys := rc.byGen[e.key.gen]; keys != nil {
		delete(keys, e.key)
		if len(keys) == 0 {
			delete(rc.byGen, e.key.gen)
		}
	}
}

// put installs e, evicting LRU entries until it fits. Entries costlier
// than the whole capacity are not cached. Caller holds rc.mu.
func (rc *ResultCache) put(e *resEntry) {
	if e.cost > rc.cap {
		return
	}
	if el, ok := rc.entries[e.key]; ok {
		rc.removeLocked(el)
	}
	for rc.used+e.cost > rc.cap {
		tail := rc.lru.Back()
		if tail == nil {
			break
		}
		rc.removeLocked(tail)
		rc.evictions++
	}
	rc.entries[e.key] = rc.lru.PushFront(e)
	rc.used += e.cost
	keys := rc.byGen[e.key.gen]
	if keys == nil {
		keys = make(map[resKey]struct{})
		rc.byGen[e.key.gen] = keys
	}
	keys[e.key] = struct{}{}
}

func cost(rows int) int64 {
	if rows < 1 {
		rows = 1
	}
	return int64(rows)
}

// GetProbe returns a cached probe bucket. The slice is a copy: probe
// results escape to API callers who may sort or mutate them.
func (rc *ResultCache) GetProbe(gen uint64, key string, t1, t2 int) ([]index.Entry, bool) {
	if rc == nil {
		return nil, false
	}
	rc.mu.Lock()
	defer rc.mu.Unlock()
	e, ok := rc.get(resKey{gen: gen, kind: resProbe, key: key, t1: t1, t2: t2})
	if !ok {
		return nil, false
	}
	return append([]index.Entry(nil), e.probe...), true
}

// PutProbe caches a probe bucket, copying the slice (per-constituent
// results may alias merge inputs or the caller's return value).
func (rc *ResultCache) PutProbe(gen uint64, key string, t1, t2 int, es []index.Entry) {
	if rc == nil {
		return
	}
	e := &resEntry{
		key:   resKey{gen: gen, kind: resProbe, key: key, t1: t1, t2: t2},
		cost:  cost(len(es)),
		probe: append([]index.Entry(nil), es...),
	}
	rc.mu.Lock()
	rc.put(e)
	rc.mu.Unlock()
}

// GetCount returns a cached per-constituent entry count.
func (rc *ResultCache) GetCount(gen uint64, t1, t2 int) (int, bool) {
	if rc == nil {
		return 0, false
	}
	rc.mu.Lock()
	defer rc.mu.Unlock()
	e, ok := rc.get(resKey{gen: gen, kind: resCount, t1: t1, t2: t2})
	if !ok {
		return 0, false
	}
	return e.count, true
}

// PutCount caches a per-constituent entry count.
func (rc *ResultCache) PutCount(gen uint64, t1, t2 int, n int) {
	if rc == nil {
		return
	}
	e := &resEntry{key: resKey{gen: gen, kind: resCount, t1: t1, t2: t2}, cost: 1, count: n}
	rc.mu.Lock()
	rc.put(e)
	rc.mu.Unlock()
}

// GetDayCounts returns a cached per-constituent day histogram. The map
// is shared: callers must treat it as read-only.
func (rc *ResultCache) GetDayCounts(gen uint64, t1, t2 int) (map[int]int, bool) {
	if rc == nil {
		return nil, false
	}
	rc.mu.Lock()
	defer rc.mu.Unlock()
	e, ok := rc.get(resKey{gen: gen, kind: resDayCounts, t1: t1, t2: t2})
	if !ok {
		return nil, false
	}
	return e.days, true
}

// PutDayCounts caches a per-constituent day histogram. The cache takes
// ownership of m; the producer must not mutate it afterwards.
func (rc *ResultCache) PutDayCounts(gen uint64, t1, t2 int, m map[int]int) {
	if rc == nil {
		return
	}
	e := &resEntry{key: resKey{gen: gen, kind: resDayCounts, t1: t1, t2: t2}, cost: cost(len(m)), days: m}
	rc.mu.Lock()
	rc.put(e)
	rc.mu.Unlock()
}

// GetKeyCounts returns a cached per-constituent key frequency map. The
// map is shared: callers must treat it as read-only.
func (rc *ResultCache) GetKeyCounts(gen uint64, t1, t2 int) (map[string]int, bool) {
	if rc == nil {
		return nil, false
	}
	rc.mu.Lock()
	defer rc.mu.Unlock()
	e, ok := rc.get(resKey{gen: gen, kind: resKeyCounts, t1: t1, t2: t2})
	if !ok {
		return nil, false
	}
	return e.keys, true
}

// PutKeyCounts caches a per-constituent key frequency map. The cache
// takes ownership of m; the producer must not mutate it afterwards.
func (rc *ResultCache) PutKeyCounts(gen uint64, t1, t2 int, m map[string]int) {
	if rc == nil {
		return
	}
	e := &resEntry{key: resKey{gen: gen, kind: resKeyCounts, t1: t1, t2: t2}, cost: cost(len(m)), keys: m}
	rc.mu.Lock()
	rc.put(e)
	rc.mu.Unlock()
}

// InvalidateGens purges every entry cached under the given generations.
// Stale generations can never be served again regardless (queries only
// look up current generations), so this reclaims memory and keeps the
// Invalidated counter honest.
func (rc *ResultCache) InvalidateGens(gens ...uint64) {
	if rc == nil {
		return
	}
	rc.mu.Lock()
	defer rc.mu.Unlock()
	for _, g := range gens {
		for k := range rc.byGen[g] {
			if el, ok := rc.entries[k]; ok {
				rc.removeLocked(el)
				rc.invalidated++
			}
		}
	}
}
