package core

// This file implements the WATA design-space variants the paper discusses
// around WATA* (§3.3): the greedy split of Table 4, a size-aware online
// variant in the spirit of Kleinberg et al.'s follow-up (which assumes
// the maximum index size is known ahead of time), and an offline
// optimal-size planner used to validate Theorem 3's competitive bound.

// WATAGreedy is the WATA variant of Table 4: the initial W days are split
// across n-1 constituents (first W mod (n-1) clusters one day larger) and
// the n-th starts empty, growing with the new days. Its maximum wave
// length is W + ceil(W/(n-1)) - 1 — one day worse than WATA* (Theorem 1
// shows WATA*'s split is optimal), which the ablation benches demonstrate.
type WATAGreedy struct {
	WATAStar
}

// NewWATAGreedy returns a Table 4-style WATA scheme (n >= 2).
func NewWATAGreedy(cfg Config, bk Backend) (*WATAGreedy, error) {
	b, err := newBase(cfg, bk, true)
	if err != nil {
		return nil, err
	}
	return &WATAGreedy{WATAStar{base: b}}, nil
}

// Name implements Scheme.
func (s *WATAGreedy) Name() string { return "WATA-greedy" }

// Start implements Scheme: W days over n-1 clusters plus an empty growing
// index.
func (s *WATAGreedy) Start() error {
	if err := s.checkStart(); err != nil {
		return err
	}
	s.cfg.Observer.BeginTransition(0)
	n := s.cfg.N
	s.zs = make([]int, n)
	for i, cluster := range splitDays(s.cfg.StartDay, s.cfg.W, n-1) {
		c, err := s.bk.Build(cluster...)
		if err != nil {
			return err
		}
		s.wave.Set(i, c)
		s.zs[i] = len(cluster)
	}
	empty, err := s.bk.Empty()
	if err != nil {
		return err
	}
	s.wave.Set(n-1, empty)
	s.zs[n-1] = 0
	s.last = n - 1
	s.started = true
	s.lastDay = s.cfg.StartDay + s.cfg.W - 1
	return nil
}

// MaxLengthWATAGreedy is the greedy variant's wave-length bound,
// W + ceil(W/(n-1)) - 1 — compare WataMaxLength in costmodel.
func MaxLengthWATAGreedy(w, n int) int {
	return w + (w+n-2)/(n-1) - 1
}

// WATASizeAware is an online WATA variant that, like Kleinberg et al.'s
// known-horizon algorithm, uses a storage budget hint: when the oldest
// constituent is fully expired it is thrown away only once the growing
// constituent's storage reaches Threshold bytes (WATA* corresponds to
// Threshold = 0: throw at the earliest opportunity). Delaying throwaways
// yields fewer, longer runs; with non-uniform day sizes a tuned threshold
// can shave the peak size at the cost of a longer soft window.
type WATASizeAware struct {
	WATAStar
	// Threshold is the growing constituent's minimum size before an
	// expired index is thrown away.
	Threshold int64
}

// NewWATASizeAware returns a size-aware WATA scheme (n >= 2).
func NewWATASizeAware(cfg Config, bk Backend, threshold int64) (*WATASizeAware, error) {
	b, err := newBase(cfg, bk, true)
	if err != nil {
		return nil, err
	}
	return &WATASizeAware{WATAStar: WATAStar{base: b}, Threshold: threshold}, nil
}

// Name implements Scheme.
func (s *WATASizeAware) Name() string { return "WATA-size-aware" }

// Transition implements Scheme. Unlike WATA*, a fully-expired index may
// linger past its earliest throwaway day while the growing index is below
// the threshold, so throwability is computed from the time-sets directly
// (the expired day may even sit inside the growing run by then).
func (s *WATASizeAware) Transition(newDay int) error {
	if err := s.checkTransition(newDay); err != nil {
		return err
	}
	s.cfg.Observer.BeginTransition(newDay)
	windowStart := newDay - s.cfg.W + 1
	// Oldest constituent (other than the growing one) with every day
	// expired.
	victim, victimOldest := -1, 0
	for i, c := range s.wave.Snapshot() {
		if i == s.last || c == nil || c.NumDays() == 0 {
			continue
		}
		days := c.Days()
		if days[len(days)-1] < windowStart {
			if victim < 0 || days[0] < victimOldest {
				victim, victimOldest = i, days[0]
			}
		}
	}
	if victim >= 0 && s.wave.Get(s.last).SizeBytes() >= s.Threshold {
		if err := s.wave.SetRetire(victim, nil); err != nil {
			return err
		}
		fresh, err := s.bk.Build(newDay)
		if err != nil {
			return err
		}
		s.wave.Set(victim, fresh)
		s.cfg.Observer.Publish(newDay)
		s.last = victim
	} else {
		if err := s.transitionUpdate(s.last, nil, []int{newDay}, newDay); err != nil {
			return err
		}
	}
	s.lastDay = newDay
	return nil
}

// OptimalWATASize2 computes, by dynamic programming, the minimum
// achievable peak index size for any WATA-family schedule with n = 2
// constituents over days 1..len(sizes) with the given per-day packed
// sizes and window W, assuming complete knowledge of the future (the
// offline adversary of Theorem 3). Runs partition the days; a run can be
// discarded only when all its days have expired, and at most two runs
// exist at a time.
func OptimalWATASize2(sizes []int64, w int) int64 {
	d := len(sizes)
	if d == 0 {
		return 0
	}
	prefix := make([]int64, d+1)
	for i, s := range sizes {
		prefix[i+1] = prefix[i] + s
	}
	sum := func(a, b int) int64 { // days a..b, 1-based inclusive
		if a > b {
			return 0
		}
		return prefix[b] - prefix[a-1]
	}
	const inf = int64(1) << 62
	// memo[j][k]: minimum future peak when the previous run is [j, k-1]
	// and the current run starts at k. 1-based day indices; k in [2, d+1]
	// is impossible as a start beyond d, so current runs start <= d.
	memo := make(map[[2]int]int64)
	var solve func(j, k int) int64
	solve = func(j, k int) int64 {
		// Previous run [j, k-1] is live; current run starts at day k.
		if v, ok := memo[[2]int{j, k}]; ok {
			return v
		}
		// Option 1: the current run [k, d] is final.
		best := sum(j, d) // peak at the last day: both runs live
		// Option 2: start the next run at day m, discarding run [j, k-1]
		// then. Feasible when the previous run is fully expired at m:
		// k-1 <= m-w.
		for m := k + 1; m <= d; m++ {
			if k-1 > m-w {
				continue
			}
			// Peak while [j,k-1] and [k,m-1] are both live: at day m-1.
			peak := sum(j, m-1)
			rest := solve(k, m)
			if rest > peak {
				peak = rest
			}
			if peak < best {
				best = peak
			}
		}
		memo[[2]int{j, k}] = best
		return best
	}
	// The first run starts at day 1, the second at any day k >= 2 (for a
	// single-run schedule the index could never be discarded, which WATA
	// excludes, but as a size bound we allow it: it equals k = d+1...
	// covered by Option 1 with j=1, k=d+1 meaning an empty current run).
	best := sum(1, d)
	for k := 2; k <= d; k++ {
		if v := solve(1, k); v < best {
			best = v
		}
	}
	return best
}
