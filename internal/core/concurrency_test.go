package core

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"waveindex/internal/index"
)

// TestConcurrentQueriesDuringTransitions runs a querying goroutine
// against a wave while the main goroutine performs transitions. Every
// probe must observe a consistent window: for hard-window schemes, the
// result for a timed probe over a fully-settled range matches ground
// truth computed from the raw data. Run with -race.
func TestConcurrentQueriesDuringTransitions(t *testing.T) {
	for _, tech := range []Technique{InPlace, SimpleShadow, PackedShadow} {
		for _, kind := range []Kind{KindDEL, KindREINDEXPlusPlus, KindRATAStar} {
			t.Run(fmt.Sprintf("%s/%s", kind, tech), func(t *testing.T) {
				const w, n = 8, 4
				s, src, _ := newDataScheme(t, kind, w, n, tech, index.HashDir)
				defer s.Close()
				if err := s.Start(); err != nil {
					t.Fatal(err)
				}

				var stop atomic.Bool
				var fail atomic.Value
				var wg sync.WaitGroup
				// Ground truth per key for the *stable interior* of the
				// window: days that are in the window across a whole
				// transition, i.e. [start+1, last-?]. We conservatively
				// query a fixed old range that stays valid for a few
				// transitions and re-anchor whenever it gets close to
				// expiring.
				for q := 0; q < 3; q++ {
					wg.Add(1)
					go func(q int) {
						defer wg.Done()
						keys := []string{"alpha", "beta", "gamma"}
						for !stop.Load() {
							key := keys[q%len(keys)]
							es, err := s.Wave().TimedIndexProbe(key, 1, 1<<29)
							if err != nil {
								fail.Store(fmt.Errorf("probe: %w", err))
								return
							}
							// Entries must be a consistent prefix-free set:
							// every returned day appears completely (no
							// torn bucket) — verify per-day counts match
							// the raw data for each day observed.
							perDay := map[int]int{}
							for _, e := range es {
								perDay[int(e.Day)]++
							}
							for d, c := range perDay {
								b, err := src.Day(d)
								if err != nil {
									continue
								}
								want := 0
								for _, p := range b.Postings {
									if p.Key == key {
										want++
									}
								}
								if c != want {
									fail.Store(fmt.Errorf("day %d key %q: saw %d entries, want %d (torn read)", d, key, c, want))
									return
								}
							}
						}
					}(q)
				}
				for d := w + 1; d <= 6*w; d++ {
					if err := s.Transition(d); err != nil {
						t.Fatalf("Transition(%d): %v", d, err)
					}
				}
				stop.Store(true)
				wg.Wait()
				if err := fail.Load(); err != nil {
					t.Fatal(err)
				}
			})
		}
	}
}

// TestConcurrentParallelProbes hammers the parallel probe path during
// transitions.
func TestConcurrentParallelProbes(t *testing.T) {
	s, _, _ := newDataScheme(t, KindWATAStar, 10, 5, SimpleShadow, index.BTreeDir)
	defer s.Close()
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	var stop atomic.Bool
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for q := 0; q < 4; q++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !stop.Load() {
				if _, err := s.Wave().ParallelTimedIndexProbe("alpha", 1, 1<<29); err != nil {
					errs <- err
					return
				}
			}
		}()
	}
	for d := 11; d <= 60; d++ {
		if err := s.Transition(d); err != nil {
			t.Fatal(err)
		}
	}
	stop.Store(true)
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}
