// Transition journal: a typed record layer over simdisk.Log that makes
// wave transitions crash-safe. The protocol is redo-only:
//
//  1. Before a day's transition runs, the day's batch is appended as a
//     JBatch (intent) record and the log is synced — the fsync orders the
//     intent before any index mutation.
//  2. The transition runs. Publish events inside it may be appended as
//     JStep records (step completion; advisory, never synced eagerly).
//  3. After the transition completes, a JCommit record is appended; it
//     rides to disk with the next day's sync.
//
// Recovery loads the last checkpoint snapshot and replays every durable
// JBatch past the checkpoint in day order, re-running the (deterministic)
// transitions: a crash anywhere inside a transition rolls forward to the
// post-transition wave, and a crash before the intent record was durable
// rolls back to the pre-transition wave — never a mix. A torn final
// record (crash mid-sync) is detected by the log's checksums and treated
// as absent. Checkpoints truncate the journal via Reset after the full
// snapshot is durable.
package core

import (
	"bytes"
	"errors"
	"fmt"
	"sync"

	"waveindex/internal/index"
	"waveindex/internal/simdisk"
)

// ErrCorruptJournal reports a journal record whose framing survived the
// log's checksum but whose payload does not decode — a bug or deliberate
// tampering, not a torn write.
var ErrCorruptJournal = errors.New("core: corrupt journal record")

// Journal record kinds.
const (
	// JBatch is an intent record: a day's full posting batch, made
	// durable before the day's transition runs.
	JBatch = 1
	// JCommit marks a day's transition as completed.
	JCommit = 2
	// JStep marks a named step inside a day's transition (advisory).
	JStep = 3
)

// JournalRecord is one decoded journal record.
type JournalRecord struct {
	Kind  int
	Day   int
	Batch *index.Batch // set for JBatch
	Step  string       // set for JStep
}

// Journal is a transition journal over an append-only log.
type Journal struct {
	log *simdisk.Log
}

// NewJournal wraps a log in the journal record layer.
func NewJournal(log *simdisk.Log) *Journal { return &Journal{log: log} }

// Log exposes the underlying log (for fault injection and stats).
func (j *Journal) Log() *simdisk.Log { return j.log }

// AppendBatch appends a day's intent record. Not durable until Sync.
func (j *Journal) AppendBatch(b *index.Batch) error {
	var buf bytes.Buffer
	buf.WriteByte(JBatch)
	writeUvarint(&buf, uint64(b.Day))
	writeUvarint(&buf, uint64(len(b.Postings)))
	for _, p := range b.Postings {
		writeUvarint(&buf, uint64(len(p.Key)))
		buf.WriteString(p.Key)
		writeUvarint(&buf, p.Entry.RecordID)
		writeUvarint(&buf, uint64(p.Entry.Aux))
		writeUvarint(&buf, uint64(uint32(p.Entry.Day)))
	}
	return j.log.Append(buf.Bytes())
}

// AppendCommit appends a day's completion record.
func (j *Journal) AppendCommit(day int) error {
	var buf bytes.Buffer
	buf.WriteByte(JCommit)
	writeUvarint(&buf, uint64(day))
	return j.log.Append(buf.Bytes())
}

// AppendStep appends a named step-completion record for a day.
func (j *Journal) AppendStep(day int, name string) error {
	var buf bytes.Buffer
	buf.WriteByte(JStep)
	writeUvarint(&buf, uint64(day))
	writeUvarint(&buf, uint64(len(name)))
	buf.WriteString(name)
	return j.log.Append(buf.Bytes())
}

// Sync makes all appended records durable.
func (j *Journal) Sync() error { return j.log.Sync() }

// Reset durably truncates the journal (after a checkpoint).
func (j *Journal) Reset() error { return j.log.Reset() }

// Close closes the underlying log.
func (j *Journal) Close() error { return j.log.Close() }

// Records decodes the durable journal. torn reports a partially-written
// suffix (crash during a sync), which recovery treats as never written.
func (j *Journal) Records() (recs []JournalRecord, torn bool, err error) {
	raw, torn, err := j.log.Records()
	if err != nil {
		return nil, torn, err
	}
	for _, r := range raw {
		rec, err := decodeRecord(r)
		if err != nil {
			return nil, torn, err
		}
		recs = append(recs, rec)
	}
	return recs, torn, nil
}

func decodeRecord(p []byte) (JournalRecord, error) {
	d := recDecoder{p: p}
	kind := d.byte()
	switch kind {
	case JBatch:
		day := int(d.uvarint())
		n := d.uvarint()
		if d.err != nil {
			return JournalRecord{}, d.fail()
		}
		// Cap the preallocation: n is read from disk and each posting
		// needs at least 4 varint bytes, so a valid record cannot hold
		// more postings than bytes.
		b := &index.Batch{Day: day, Postings: make([]index.Posting, 0, min(int(n), len(p)/4))}
		for i := uint64(0); i < n; i++ {
			key := d.bytes()
			rid := d.uvarint()
			aux := d.uvarint()
			eday := d.uvarint()
			if d.err != nil {
				return JournalRecord{}, d.fail()
			}
			b.Postings = append(b.Postings, index.Posting{
				Key: string(key),
				Entry: index.Entry{
					RecordID: rid,
					Aux:      uint32(aux),
					Day:      int32(uint32(eday)),
				},
			})
		}
		return JournalRecord{Kind: JBatch, Day: day, Batch: b}, d.err
	case JCommit:
		day := int(d.uvarint())
		if d.err != nil {
			return JournalRecord{}, d.fail()
		}
		return JournalRecord{Kind: JCommit, Day: day}, nil
	case JStep:
		day := int(d.uvarint())
		step := d.bytes()
		if d.err != nil {
			return JournalRecord{}, d.fail()
		}
		return JournalRecord{Kind: JStep, Day: day, Step: string(step)}, nil
	}
	return JournalRecord{}, fmt.Errorf("%w: unknown kind %d", ErrCorruptJournal, kind)
}

// recDecoder reads the journal's varint encoding with a sticky error.
type recDecoder struct {
	p   []byte
	off int
	err error
}

func (d *recDecoder) fail() error {
	if d.err == nil {
		d.err = ErrCorruptJournal
	}
	return d.err
}

func (d *recDecoder) byte() int {
	if d.err != nil || d.off >= len(d.p) {
		d.fail()
		return -1
	}
	b := d.p[d.off]
	d.off++
	return int(b)
}

func (d *recDecoder) uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	var v uint64
	var shift uint
	for {
		if d.off >= len(d.p) || shift > 63 {
			d.fail()
			return 0
		}
		b := d.p[d.off]
		d.off++
		v |= uint64(b&0x7f) << shift
		if b < 0x80 {
			return v
		}
		shift += 7
	}
}

func (d *recDecoder) bytes() []byte {
	n := d.uvarint()
	if d.err != nil {
		return nil
	}
	if n > uint64(len(d.p)-d.off) {
		d.fail()
		return nil
	}
	out := d.p[d.off : d.off+int(n)]
	d.off += int(n)
	return out
}

func writeUvarint(buf *bytes.Buffer, v uint64) {
	for v >= 0x80 {
		buf.WriteByte(byte(v) | 0x80)
		v >>= 7
	}
	buf.WriteByte(byte(v))
}

// StepRecorder is an Observer that appends advisory step-completion
// records to the journal as transitions publish days. Append errors are
// dropped: steps are diagnostics, not correctness state.
type StepRecorder struct {
	j *Journal

	mu  sync.Mutex
	day int
}

// NewStepRecorder returns a recorder writing to j.
func NewStepRecorder(j *Journal) *StepRecorder { return &StepRecorder{j: j} }

// BeginTransition implements Observer.
func (r *StepRecorder) BeginTransition(newDay int) {
	r.mu.Lock()
	r.day = newDay
	r.mu.Unlock()
	_ = r.j.AppendStep(newDay, "begin")
}

// RecordOp implements Observer.
func (r *StepRecorder) RecordOp(kind OpKind, days []int) {
	r.mu.Lock()
	day := r.day
	r.mu.Unlock()
	_ = r.j.AppendStep(day, kind.String())
}

// Publish implements Observer.
func (r *StepRecorder) Publish(newDay int) {
	_ = r.j.AppendStep(newDay, "publish")
}
