package core

import (
	"bytes"
	"fmt"
	"io"
	"sort"

	"waveindex/internal/index"
	"waveindex/internal/wire"
)

const schemeMagic = "WSCH1"

// SaveScheme serialises a scheme's complete state — constituents,
// temporaries, and algorithm bookkeeping — so LoadScheme can resume
// transitions where the saved scheme left off. Only schemes running on a
// data backend can be saved (the phantom backend is for experiments).
func SaveScheme(s Scheme, w io.Writer) error {
	ww := wire.NewWriter(w)
	ww.Magic(schemeMagic)
	switch sc := s.(type) {
	case *DEL:
		ww.Int(int(KindDEL))
		if err := saveBase(ww, sc.base); err != nil {
			return err
		}
	case *REINDEX:
		ww.Int(int(KindREINDEX))
		if err := saveBase(ww, sc.base); err != nil {
			return err
		}
	case *REINDEXPlus:
		ww.Int(int(KindREINDEXPlus))
		if err := saveBase(ww, sc.base); err != nil {
			return err
		}
		if err := saveOptional(ww, sc.temp); err != nil {
			return err
		}
		ww.Ints(sc.daysToAdd)
	case *REINDEXPlusPlus:
		ww.Int(int(KindREINDEXPlusPlus))
		if err := saveBase(ww, sc.base); err != nil {
			return err
		}
		ww.Int(len(sc.temps))
		for _, t := range sc.temps {
			if err := saveOptional(ww, t); err != nil {
				return err
			}
		}
		ww.Int(sc.tempUsed)
		ww.Ints(sc.daysToAdd)
	case *WATAStar:
		ww.Int(int(KindWATAStar))
		if err := saveBase(ww, sc.base); err != nil {
			return err
		}
		ww.Ints(sc.zs)
		ww.Int(sc.last)
	case *RATAStar:
		ww.Int(int(KindRATAStar))
		if err := saveBase(ww, sc.base); err != nil {
			return err
		}
		ww.Ints(sc.zs)
		ww.Int(sc.last)
		ww.Int(len(sc.temps))
		for _, t := range sc.temps {
			if err := saveOptional(ww, t); err != nil {
				return err
			}
		}
		ww.Int(sc.tempUsed)
	default:
		return fmt.Errorf("core: cannot save scheme %T", s)
	}
	return ww.Flush()
}

// LoadScheme reconstructs a saved scheme onto the given backend. The
// provided Config must match the saved scheme's geometry (W, n).
func LoadScheme(cfg Config, bk *DataBackend, r io.Reader) (Scheme, error) {
	rr := wire.NewReader(r)
	rr.Expect(schemeMagic)
	kind := Kind(rr.Int())
	if err := rr.Err(); err != nil {
		return nil, err
	}
	s, err := NewScheme(kind, cfg, bk)
	if err != nil {
		return nil, err
	}
	switch sc := s.(type) {
	case *DEL:
		err = loadBase(rr, sc.base, bk)
	case *REINDEX:
		err = loadBase(rr, sc.base, bk)
	case *REINDEXPlus:
		if err = loadBase(rr, sc.base, bk); err == nil {
			sc.temp, err = loadOptional(rr, bk)
			sc.daysToAdd = rr.Ints()
		}
	case *REINDEXPlusPlus:
		if err = loadBase(rr, sc.base, bk); err == nil {
			n := rr.Int()
			if n < 0 || n > cfg.W+1 {
				return nil, fmt.Errorf("core: snapshot has %d temps, window is %d", n, cfg.W)
			}
			sc.temps = make([]Constituent, 0, n)
			for i := 0; i < n && err == nil; i++ {
				var t Constituent
				t, err = loadOptional(rr, bk)
				sc.temps = append(sc.temps, t)
			}
			sc.tempUsed = rr.Int()
			sc.daysToAdd = rr.Ints()
		}
	case *WATAStar:
		if err = loadBase(rr, sc.base, bk); err == nil {
			sc.zs = rr.Ints()
			sc.last = rr.Int()
		}
	case *RATAStar:
		if err = loadBase(rr, sc.base, bk); err == nil {
			sc.zs = rr.Ints()
			sc.last = rr.Int()
			n := rr.Int()
			if n < 0 || n > cfg.W+1 {
				return nil, fmt.Errorf("core: snapshot has %d temps, window is %d", n, cfg.W)
			}
			sc.temps = make([]Constituent, 0, n)
			for i := 0; i < n && err == nil; i++ {
				var t Constituent
				t, err = loadOptional(rr, bk)
				sc.temps = append(sc.temps, t)
			}
			sc.tempUsed = rr.Int()
		}
	}
	if err != nil {
		return nil, fmt.Errorf("core: load scheme: %w", err)
	}
	if err := rr.Err(); err != nil {
		return nil, fmt.Errorf("core: load scheme: %w", err)
	}
	return s, nil
}

// saveBase writes the shared scheme state: progress and the wave slots.
func saveBase(ww *wire.Writer, b *base) error {
	ww.Bool(b.started)
	ww.Int(b.lastDay)
	slots := b.wave.Snapshot()
	ww.Int(len(slots))
	for _, c := range slots {
		if err := saveOptional(ww, c); err != nil {
			return err
		}
	}
	return nil
}

func loadBase(rr *wire.Reader, b *base, bk *DataBackend) error {
	b.started = rr.Bool()
	b.lastDay = rr.Int()
	n := rr.Int()
	if err := rr.Err(); err != nil {
		return err
	}
	if n != b.cfg.N {
		return fmt.Errorf("core: snapshot has %d slots, config wants %d", n, b.cfg.N)
	}
	for i := 0; i < n; i++ {
		c, err := loadOptional(rr, bk)
		if err != nil {
			return err
		}
		b.wave.Set(i, c)
	}
	return nil
}

// saveOptional writes a present flag followed by the constituent's index
// snapshot blob.
func saveOptional(ww *wire.Writer, c Constituent) error {
	if c == nil {
		ww.Bool(false)
		return nil
	}
	ww.Bool(true)
	dc, ok := c.(*dataConstituent)
	if !ok {
		return fmt.Errorf("core: cannot save %T: persistence requires the data backend", c)
	}
	var buf bytes.Buffer
	if err := dc.idx.WriteSnapshot(&buf); err != nil {
		return err
	}
	ww.Bytes(buf.Bytes())
	return nil
}

func loadOptional(rr *wire.Reader, bk *DataBackend) (Constituent, error) {
	if !rr.Bool() {
		return nil, rr.Err()
	}
	raw := rr.Bytes()
	if err := rr.Err(); err != nil {
		return nil, err
	}
	if len(raw) == 0 {
		return nil, fmt.Errorf("core: empty constituent snapshot")
	}
	idx, err := index.ReadSnapshot(bk.store, bytes.NewReader(raw))
	if err != nil {
		return nil, err
	}
	return &dataConstituent{bk: bk, idx: idx}, nil
}

// SaveSource serialises a MemorySource's retained day batches.
func SaveSource(src *MemorySource, w io.Writer) error {
	ww := wire.NewWriter(w)
	ww.Magic("WSRC1")
	src.mu.RLock()
	defer src.mu.RUnlock()
	ww.Int(src.retain)
	ww.Int(src.newest)
	ww.Int(len(src.byDay))
	days := make([]int, 0, len(src.byDay))
	for d := range src.byDay {
		days = append(days, d)
	}
	sort.Ints(days)
	for _, d := range days {
		b := src.byDay[d]
		ww.Int(b.Day)
		ww.Int(len(b.Postings))
		for _, p := range b.Postings {
			ww.String(p.Key)
			ww.U64(p.Entry.RecordID)
			ww.U64(uint64(p.Entry.Aux))
			ww.I64(int64(p.Entry.Day))
		}
	}
	return ww.Flush()
}

// LoadSource rebuilds a MemorySource from SaveSource's output.
func LoadSource(r io.Reader) (*MemorySource, error) {
	rr := wire.NewReader(r)
	rr.Expect("WSRC1")
	retain := rr.Int()
	newest := rr.Int()
	n := rr.Int()
	if err := rr.Err(); err != nil {
		return nil, err
	}
	src := NewMemorySource(retain)
	src.newest = newest
	for i := 0; i < n; i++ {
		day := rr.Int()
		np := rr.Int()
		if err := rr.Err(); err != nil {
			return nil, err
		}
		// np is read from untrusted input: cap the preallocation so a
		// corrupt count cannot demand unbounded memory up front. Every
		// posting costs at least a dozen encoded bytes, so the slice grows
		// organically to the true size if the record really is that large.
		b := &index.Batch{Day: day, Postings: make([]index.Posting, 0, min(max(np, 0), 1<<16))}
		for j := 0; j < np; j++ {
			p := index.Posting{
				Key: rr.String(),
				Entry: index.Entry{
					RecordID: rr.U64(),
					Aux:      uint32(rr.U64()),
					Day:      int32(rr.I64()),
				},
			}
			b.Postings = append(b.Postings, p)
		}
		if err := rr.Err(); err != nil {
			return nil, err
		}
		src.byDay[day] = b
	}
	return src, nil
}
