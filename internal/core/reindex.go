package core

// REINDEX maintains a hard window by rebuilding (§3.2, Fig. 13): each day
// the constituent holding the expired day is rebuilt from scratch over
// its surviving days plus the new day. The result is always packed and no
// deletion code is needed, at the cost of reindexing about W/n days per
// day.
type REINDEX struct {
	*base
}

// NewREINDEX returns a REINDEX scheme.
func NewREINDEX(cfg Config, bk Backend) (*REINDEX, error) {
	b, err := newBase(cfg, bk, false)
	if err != nil {
		return nil, err
	}
	return &REINDEX{base: b}, nil
}

// Name implements Scheme.
func (s *REINDEX) Name() string { return "REINDEX" }

// HardWindow implements Scheme.
func (s *REINDEX) HardWindow() bool { return true }

// TempSizeBytes implements Scheme.
func (s *REINDEX) TempSizeBytes() int64 { return 0 }

// Start implements Scheme.
func (s *REINDEX) Start() error { return s.startUniform() }

// Transition implements Scheme.
func (s *REINDEX) Transition(newDay int) error {
	if err := s.checkTransition(newDay); err != nil {
		return err
	}
	s.cfg.Observer.BeginTransition(newDay)
	if err := s.crash(CPBegin); err != nil {
		return err
	}
	expired := newDay - s.cfg.W
	j := s.ownerOf(expired)
	days := []int{}
	for _, d := range s.wave.Get(j).Days() {
		if d != expired {
			days = append(days, d)
		}
	}
	days = append(days, newDay)
	markPhase(s.cfg.Observer, PhaseTransition)
	rebuilt, err := s.bk.Build(days...)
	if err != nil {
		return err
	}
	if err := s.crash(CPReindexBuilt); err != nil {
		rebuilt.Drop()
		return err
	}
	if err := s.publishSwap(j, rebuilt, newDay); err != nil {
		return err
	}
	s.lastDay = newDay
	return nil
}

// Close implements Scheme.
func (s *REINDEX) Close() error { return s.closeAll() }
