package core

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// TestWATAGreedyTable4 replays Table 4's transitions (W=10, n=4).
func TestWATAGreedyTable4(t *testing.T) {
	s, err := NewWATAGreedy(Config{W: 10, N: 4}, phantom())
	if err != nil {
		t.Fatal(err)
	}
	got := traceScheme(t, s, 14)
	want := map[int]string{
		10: "[1 2 3 4] [5 6 7] [8 9 10] []",
		11: "[1 2 3 4] [5 6 7] [8 9 10] [11]",
		12: "[1 2 3 4] [5 6 7] [8 9 10] [11 12]",
		13: "[1 2 3 4] [5 6 7] [8 9 10] [11 12 13]",
		14: "[14] [5 6 7] [8 9 10] [11 12 13]",
	}
	for d, w := range want {
		if got[d] != w {
			t.Errorf("day %d: wave = %s, want %s", d, got[d], w)
		}
	}
}

// TestWATAGreedyLengthWorseThanWATAStar demonstrates Theorem 1: the
// greedy split's max length exceeds WATA*'s optimum for the Table 3/4
// geometry (13 vs 12 for W=10, n=4).
func TestWATAGreedyLengthWorseThanWATAStar(t *testing.T) {
	maxLen := func(s Scheme) int {
		if err := s.Start(); err != nil {
			t.Fatal(err)
		}
		m := s.Wave().Length()
		for d := 11; d <= 70; d++ {
			if err := s.Transition(d); err != nil {
				t.Fatal(err)
			}
			if l := s.Wave().Length(); l > m {
				m = l
			}
		}
		s.Close()
		return m
	}
	g, err := NewWATAGreedy(Config{W: 10, N: 4}, phantom())
	if err != nil {
		t.Fatal(err)
	}
	w, err := NewWATAStar(Config{W: 10, N: 4}, phantom())
	if err != nil {
		t.Fatal(err)
	}
	gl, wl := maxLen(g), maxLen(w)
	if wl != 12 {
		t.Errorf("WATA* max length = %d, want 12", wl)
	}
	if gl != 13 {
		t.Errorf("WATA-greedy max length = %d, want 13", gl)
	}
	if got := MaxLengthWATAGreedy(10, 4); got != 13 {
		t.Errorf("MaxLengthWATAGreedy(10,4) = %d, want 13", got)
	}
}

// TestWATAGreedyWindowCoverage checks the greedy variant still covers the
// window after every transition.
func TestWATAGreedyWindowCoverage(t *testing.T) {
	for _, g := range []struct{ w, n int }{{10, 4}, {7, 2}, {7, 3}, {12, 5}} {
		s, err := NewWATAGreedy(Config{W: g.w, N: g.n}, phantom())
		if err != nil {
			t.Fatal(err)
		}
		if err := s.Start(); err != nil {
			t.Fatal(err)
		}
		for d := g.w + 1; d <= 5*g.w; d++ {
			if err := s.Transition(d); err != nil {
				t.Fatal(err)
			}
			checkCoverage(t, s, false)
		}
		s.Close()
	}
}

// TestWATASizeAwareZeroThresholdMatchesWATAStar: with Threshold 0 the
// size-aware variant must make exactly WATA*'s decisions.
func TestWATASizeAwareZeroThresholdMatchesWATAStar(t *testing.T) {
	a, err := NewWATASizeAware(Config{W: 9, N: 3}, phantom(), 0)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewWATAStar(Config{W: 9, N: 3}, phantom())
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Start(); err != nil {
		t.Fatal(err)
	}
	if err := b.Start(); err != nil {
		t.Fatal(err)
	}
	for d := 10; d <= 50; d++ {
		if err := a.Transition(d); err != nil {
			t.Fatal(err)
		}
		if err := b.Transition(d); err != nil {
			t.Fatal(err)
		}
		if ga, gb := renderWave(a.Wave()), renderWave(b.Wave()); ga != gb {
			t.Fatalf("day %d: size-aware %s != WATA* %s", d, ga, gb)
		}
	}
}

// TestWATASizeAwareDelaysThrowaway: with a huge threshold the growing
// index keeps growing past WATA*'s throwaway point, and the wave still
// covers the window.
func TestWATASizeAwareDelaysThrowaway(t *testing.T) {
	bk := NewPhantomBackend(UniformSizes{S: 10, SPrime: 10}, nil)
	s, err := NewWATASizeAware(Config{W: 6, N: 3, Technique: InPlace}, bk, 75)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	maxRun := 0
	for d := 7; d <= 40; d++ {
		if err := s.Transition(d); err != nil {
			t.Fatal(err)
		}
		checkCoverage(t, s, false)
		for _, c := range s.Wave().Snapshot() {
			if c.NumDays() > maxRun {
				maxRun = c.NumDays()
			}
		}
	}
	// Threshold 75 bytes = 7.5 days: runs must reach 8 days, beyond
	// WATA*'s ceil((W-1)/(n-1)) = 3-day clusters.
	if maxRun < 8 {
		t.Errorf("max run = %d days; threshold should force runs past 8", maxRun)
	}
}

// TestOptimalWATASize2Basics pins the DP on hand-checkable instances.
func TestOptimalWATASize2Basics(t *testing.T) {
	// Uniform sizes, W=3, 9 days: runs of 2 give peak 4 once steady
	// (e.g. runs [1,2][3,4][5,6]... peak = 2+2).
	uniform := make([]int64, 9)
	for i := range uniform {
		uniform[i] = 1
	}
	if got := OptimalWATASize2(uniform, 3); got != 4 {
		t.Errorf("uniform W=3: optimal = %d, want 4", got)
	}
	// A single huge day: the peak must include it plus its window
	// partners.
	spiky := []int64{1, 1, 1, 100, 1, 1, 1, 1, 1}
	got := OptimalWATASize2(spiky, 3)
	if got < 102 { // the 100-day plus at least W-1 neighbours
		t.Errorf("spiky optimal = %d, want >= 102", got)
	}
	if got > 104 {
		t.Errorf("spiky optimal = %d, suspiciously high", got)
	}
	if OptimalWATASize2(nil, 3) != 0 {
		t.Error("empty input should cost 0")
	}
}

// TestTheorem3CompetitiveRatio verifies WATA* stays within 2x of the
// offline optimal size (n=2) on random volume traces — Theorem 3.
func TestTheorem3CompetitiveRatio(t *testing.T) {
	f := func(seed int64, wRaw uint8) bool {
		w := 3 + int(wRaw%6) // W in [3, 8]
		rng := rand.New(rand.NewSource(seed))
		const days = 40
		sizes := make([]int64, days)
		for i := range sizes {
			sizes[i] = int64(1 + rng.Intn(100))
		}
		sm := SizeFunc{Packed: func(d int) int64 {
			if d < 1 || d > days {
				return 0
			}
			return sizes[d-1]
		}, Overhead: 1}
		bk := NewPhantomBackend(sm, nil)
		s, err := NewWATAStar(Config{W: w, N: 2, Technique: InPlace}, bk)
		if err != nil {
			t.Log(err)
			return false
		}
		defer s.Close()
		if err := s.Start(); err != nil {
			t.Log(err)
			return false
		}
		lazyMax := s.Wave().SizeBytes()
		for d := w + 1; d <= days; d++ {
			if err := s.Transition(d); err != nil {
				t.Log(err)
				return false
			}
			if sz := s.Wave().SizeBytes(); sz > lazyMax {
				lazyMax = sz
			}
		}
		opt := OptimalWATASize2(sizes, w)
		if lazyMax > 2*opt {
			t.Logf("W=%d: WATA* max %d > 2 x optimal %d", w, lazyMax, opt)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// TestVacuumBaseline checks the §7 vacuum baseline: window coverage via
// timestamps, soft window slack bounded by the vacuum period, and packed
// rewrites on schedule.
func TestVacuumBaseline(t *testing.T) {
	bk := NewPhantomBackend(UniformSizes{S: 10, SPrime: 14}, nil)
	s, err := NewVacuum(Config{W: 7, N: 1}, bk, 5)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	if s.HardWindow() {
		t.Error("vacuum every 5 days should report a soft window")
	}
	maxSlack := 0
	for d := 8; d <= 50; d++ {
		if err := s.Transition(d); err != nil {
			t.Fatal(err)
		}
		// Window days always present.
		c := s.Wave().Get(0)
		for day := s.WindowStart(); day <= d; day++ {
			if !c.HasDay(day) {
				t.Fatalf("day %d: window day %d missing", d, day)
			}
		}
		if slack := c.NumDays() - 7; slack > maxSlack {
			maxSlack = slack
		}
	}
	if maxSlack == 0 {
		t.Error("vacuum baseline never accumulated logical garbage")
	}
	if maxSlack > 4 {
		t.Errorf("slack reached %d days, must stay below the vacuum period 5", maxSlack)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if bk.Meter().Live() != 0 {
		t.Errorf("leaked %d bytes", bk.Meter().Live())
	}
}

// TestVacuumEveryOneIsHard: period 1 vacuums daily = hard window.
func TestVacuumEveryOneIsHard(t *testing.T) {
	s, err := NewVacuum(Config{W: 5, N: 1}, phantom(), 1)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if !s.HardWindow() {
		t.Error("vacuum every day should be a hard window")
	}
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	for d := 6; d <= 20; d++ {
		if err := s.Transition(d); err != nil {
			t.Fatal(err)
		}
		if got := s.Wave().Length(); got != 5 {
			t.Fatalf("day %d: length %d, want 5", d, got)
		}
	}
}

// TestVacuumValidation covers the constructor errors.
func TestVacuumValidation(t *testing.T) {
	if _, err := NewVacuum(Config{W: 5, N: 2}, phantom(), 3); err == nil {
		t.Error("n=2 accepted")
	}
	if _, err := NewVacuum(Config{W: 5, N: 1}, phantom(), 0); err == nil {
		t.Error("period 0 accepted")
	}
}
