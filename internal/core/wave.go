package core

import (
	"fmt"
	"sort"
	"sync"

	"waveindex/internal/index"
)

// Searcher is the query surface of data-bearing constituents.
type Searcher interface {
	Probe(key string, t1, t2 int) ([]index.Entry, error)
	Scan(t1, t2 int, fn func(key string, e index.Entry) bool) error
}

// Wave is the queryable wave index Theta: the current set of constituent
// indexes. Queries take a read lock; maintenance publishes new
// constituents under the write lock, so with shadow techniques queries
// never observe a half-updated index (§2.1).
type Wave struct {
	mu   sync.RWMutex
	cons []Constituent
}

// NewWave returns a wave with n empty slots.
func NewWave(n int) *Wave {
	return &Wave{cons: make([]Constituent, n)}
}

// N returns the number of constituent slots.
func (w *Wave) N() int {
	w.mu.RLock()
	defer w.mu.RUnlock()
	return len(w.cons)
}

// Get returns the constituent in slot i (may be nil before Start).
func (w *Wave) Get(i int) Constituent {
	w.mu.RLock()
	defer w.mu.RUnlock()
	return w.cons[i]
}

// Set publishes c in slot i.
func (w *Wave) Set(i int, c Constituent) {
	w.mu.Lock()
	w.cons[i] = c
	w.mu.Unlock()
}

// Snapshot returns the current constituents.
func (w *Wave) Snapshot() []Constituent {
	w.mu.RLock()
	defer w.mu.RUnlock()
	return append([]Constituent(nil), w.cons...)
}

// Locked runs fn under the wave's write lock; used by in-place updating,
// which mutates a live index and therefore must exclude queries.
func (w *Wave) Locked(fn func() error) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	return fn()
}

// Days returns the union of the constituents' time-sets, ascending.
func (w *Wave) Days() []int {
	w.mu.RLock()
	defer w.mu.RUnlock()
	seen := map[int]struct{}{}
	for _, c := range w.cons {
		if c == nil {
			continue
		}
		for _, d := range c.Days() {
			seen[d] = struct{}{}
		}
	}
	out := make([]int, 0, len(seen))
	for d := range seen {
		out = append(out, d)
	}
	sort.Ints(out)
	return out
}

// Length returns the total number of days currently indexed — the
// paper's length measure (Appendix B). For soft-window schemes this can
// exceed W.
func (w *Wave) Length() int {
	w.mu.RLock()
	defer w.mu.RUnlock()
	n := 0
	for _, c := range w.cons {
		if c != nil {
			n += c.NumDays()
		}
	}
	return n
}

// SizeBytes returns the total storage of the constituents.
func (w *Wave) SizeBytes() int64 {
	w.mu.RLock()
	defer w.mu.RUnlock()
	var n int64
	for _, c := range w.cons {
		if c != nil {
			n += c.SizeBytes()
		}
	}
	return n
}

// intersects reports whether the constituent's time-set meets [t1, t2].
func intersects(c Constituent, t1, t2 int) bool {
	for _, d := range c.Days() {
		if d >= t1 && d <= t2 {
			return true
		}
	}
	return false
}

// TimedIndexProbe retrieves the entries for search value key inserted
// between day t1 and t2 inclusive, probing only constituents whose
// clusters intersect the range and filtering entries by timestamp (§2.2).
func (w *Wave) TimedIndexProbe(key string, t1, t2 int) ([]index.Entry, error) {
	w.mu.RLock()
	defer w.mu.RUnlock()
	var out []index.Entry
	for _, c := range w.cons {
		if c == nil || !intersects(c, t1, t2) {
			continue
		}
		s, ok := c.(Searcher)
		if !ok {
			return nil, fmt.Errorf("core: constituent %T is not searchable", c)
		}
		es, err := s.Probe(key, t1, t2)
		if err != nil {
			return nil, err
		}
		out = append(out, es...)
	}
	sortEntries(out)
	return out, nil
}

// IndexProbe retrieves all entries for key across the whole wave,
// including any soft-window days older than the required window.
func (w *Wave) IndexProbe(key string) ([]index.Entry, error) {
	return w.TimedIndexProbe(key, minDay, maxDay)
}

// TimedSegmentScan visits every entry inserted between day t1 and t2,
// scanning each qualifying constituent in key order. fn returning false
// stops the scan.
func (w *Wave) TimedSegmentScan(t1, t2 int, fn func(key string, e index.Entry) bool) error {
	w.mu.RLock()
	defer w.mu.RUnlock()
	stop := false
	for _, c := range w.cons {
		if stop {
			break
		}
		if c == nil || !intersects(c, t1, t2) {
			continue
		}
		s, ok := c.(Searcher)
		if !ok {
			return fmt.Errorf("core: constituent %T is not searchable", c)
		}
		err := s.Scan(t1, t2, func(k string, e index.Entry) bool {
			if !fn(k, e) {
				stop = true
				return false
			}
			return true
		})
		if err != nil {
			return err
		}
	}
	return nil
}

// SegmentScan visits every entry in the wave (soft-window extras
// included).
func (w *Wave) SegmentScan(fn func(key string, e index.Entry) bool) error {
	return w.TimedSegmentScan(minDay, maxDay, fn)
}

// ParallelTimedIndexProbe is TimedIndexProbe with the per-constituent
// probes issued concurrently — the multi-disk parallelism the paper's §8
// identifies as a wave-index advantage over monolithic indexes.
func (w *Wave) ParallelTimedIndexProbe(key string, t1, t2 int) ([]index.Entry, error) {
	w.mu.RLock()
	defer w.mu.RUnlock()
	type result struct {
		es  []index.Entry
		err error
	}
	var targets []Searcher
	for _, c := range w.cons {
		if c == nil || !intersects(c, t1, t2) {
			continue
		}
		s, ok := c.(Searcher)
		if !ok {
			return nil, fmt.Errorf("core: constituent %T is not searchable", c)
		}
		targets = append(targets, s)
	}
	results := make([]result, len(targets))
	var wg sync.WaitGroup
	for i, s := range targets {
		wg.Add(1)
		go func(i int, s Searcher) {
			defer wg.Done()
			es, err := s.Probe(key, t1, t2)
			results[i] = result{es, err}
		}(i, s)
	}
	wg.Wait()
	var out []index.Entry
	for _, r := range results {
		if r.err != nil {
			return nil, r.err
		}
		out = append(out, r.es...)
	}
	sortEntries(out)
	return out, nil
}

const (
	minDay = -1 << 30
	maxDay = 1 << 30
)

// sortEntries orders probe results by (day, record) so results are
// deterministic regardless of how days are clustered across constituents.
func sortEntries(es []index.Entry) {
	sort.Slice(es, func(i, j int) bool {
		if es[i].Day != es[j].Day {
			return es[i].Day < es[j].Day
		}
		if es[i].RecordID != es[j].RecordID {
			return es[i].RecordID < es[j].RecordID
		}
		return es[i].Aux < es[j].Aux
	})
}
