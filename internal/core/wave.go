package core

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"time"

	"waveindex/internal/index"
)

// Searcher is the query surface of data-bearing constituents.
type Searcher interface {
	Probe(key string, t1, t2 int) ([]index.Entry, error)
	Scan(t1, t2 int, fn func(key string, e index.Entry) bool) error
}

// MultiSearcher is implemented by constituents that can answer a batch of
// probes in one pass, amortising directory lookups and seeks.
type MultiSearcher interface {
	// MultiProbe returns per-key entry lists aligned with keys (nil for
	// absent keys), each sorted by (day, record, aux). keys must be
	// distinct.
	MultiProbe(keys []string, t1, t2 int) ([][]index.Entry, error)
}

// DayBounder is implemented by constituents that can report the bounds of
// their time-set in O(1).
type DayBounder interface {
	DayBounds() (min, max int, ok bool)
}

// Wave is the queryable wave index Theta: the current set of constituent
// indexes. Queries take a snapshot of the constituents and run against it
// without holding the wave lock, so maintenance can publish new
// constituents while long scans are in flight; a superseded constituent
// is retired — its storage release deferred until no query still holds a
// snapshot referencing it. In-place updates, which mutate a live index,
// still exclude queries via a dedicated query lock (§2.1).
type Wave struct {
	// mu guards the constituent slots and the retirement bookkeeping; it
	// is held only for short critical sections, never across IO.
	mu sync.RWMutex
	// qmu is held in read mode for the whole of every query and in write
	// mode by in-place updates, which are the only maintenance operations
	// that mutate an index queries may be reading. Shadow publishing does
	// not touch qmu, so it never waits on a long scan. Lock order:
	// qmu before mu.
	qmu     sync.RWMutex
	cons    []Constituent
	broken  []bool // slots whose constituent is torn or missing; queries skip them
	eng     *Engine
	readers int           // queries holding a snapshot
	retired []Constituent // superseded while readers > 0; dropped later

	// gens stamps each slot with a monotonic constituent generation:
	// genSeq advances and the slot's generation moves on every event that
	// changes what the slot answers — publish, retire-swap, in-place
	// mutation, broken marking. Between moves a constituent is immutable,
	// so (generation, query) identifies a result forever; the result
	// cache keys on it and never needs locking against maintenance.
	gens   []uint64
	genSeq uint64
	rc     *ResultCache

	// qm and tracer are the engine's observability hooks, settable via
	// SetInstrumentation. qm is held by value: the zero value's nil
	// handles are no-ops, so uninstrumented queries record nothing.
	qm     QueryMetrics
	tracer Tracer
}

// NewWave returns a wave with n empty slots and a query engine sized to
// n — one potential reader per constituent.
func NewWave(n int) *Wave {
	return &Wave{
		cons:   make([]Constituent, n),
		broken: make([]bool, n),
		gens:   make([]uint64, n),
		eng:    NewEngine(n),
	}
}

// SetResultCache installs (or removes, with nil) the per-constituent
// result cache consulted by probe and aggregate queries.
func (w *Wave) SetResultCache(rc *ResultCache) {
	w.mu.Lock()
	w.rc = rc
	w.mu.Unlock()
}

// ResultCacheStats reports the result cache's counters (zero when no
// cache is installed).
func (w *Wave) ResultCacheStats() ResultCacheStats {
	w.mu.RLock()
	rc := w.rc
	w.mu.RUnlock()
	return rc.Stats()
}

// Generations returns the current per-slot constituent generations.
func (w *Wave) Generations() []uint64 {
	w.mu.RLock()
	defer w.mu.RUnlock()
	return append([]uint64(nil), w.gens...)
}

// bumpGenLocked advances slot i's generation and purges results cached
// under the superseded one. Caller holds w.mu (rc's lock is a leaf).
func (w *Wave) bumpGenLocked(i int) {
	old := w.gens[i]
	w.genSeq++
	w.gens[i] = w.genSeq
	if old != 0 {
		w.rc.InvalidateGens(old)
	}
}

// SetParallelism resizes the query engine's pool. In-flight queries keep
// the pool they started with.
func (w *Wave) SetParallelism(p int) {
	w.mu.Lock()
	w.eng = NewEngine(p)
	w.mu.Unlock()
}

// Parallelism returns the query engine's concurrency bound.
func (w *Wave) Parallelism() int {
	w.mu.RLock()
	defer w.mu.RUnlock()
	return w.eng.Parallelism()
}

// N returns the number of constituent slots.
func (w *Wave) N() int {
	w.mu.RLock()
	defer w.mu.RUnlock()
	return len(w.cons)
}

// Get returns the constituent in slot i (may be nil before Start).
func (w *Wave) Get(i int) Constituent {
	w.mu.RLock()
	defer w.mu.RUnlock()
	return w.cons[i]
}

// Set publishes c in slot i, clearing any broken mark: a freshly
// published constituent is whole.
func (w *Wave) Set(i int, c Constituent) {
	w.mu.Lock()
	w.cons[i] = c
	w.broken[i] = false
	w.bumpGenLocked(i)
	w.mu.Unlock()
}

// MarkBroken flags slot i as broken after a failed mutation: queries skip
// the slot (degrading to the surviving constituents instead of erroring
// or panicking on torn state) and Degraded reports true until a new
// constituent is published into the slot.
func (w *Wave) MarkBroken(i int) {
	w.mu.Lock()
	w.broken[i] = true
	w.bumpGenLocked(i)
	w.mu.Unlock()
}

// Degraded reports whether any slot is broken, i.e. queries are being
// served from a subset of the wave.
func (w *Wave) Degraded() bool {
	w.mu.RLock()
	defer w.mu.RUnlock()
	for _, b := range w.broken {
		if b {
			return true
		}
	}
	return false
}

// BrokenSlots returns the indices of broken slots.
func (w *Wave) BrokenSlots() []int {
	w.mu.RLock()
	defer w.mu.RUnlock()
	var out []int
	for i, b := range w.broken {
		if b {
			out = append(out, i)
		}
	}
	return out
}

// Snapshot returns the current constituents.
func (w *Wave) Snapshot() []Constituent {
	w.mu.RLock()
	defer w.mu.RUnlock()
	return append([]Constituent(nil), w.cons...)
}

// beginQuery registers a query: it pins the current constituents so
// retirement defers their release, and returns them — with their
// generations, the engine to run on, and the result cache — for the
// query to use. Every beginQuery must be paired with endQuery.
func (w *Wave) beginQuery() ([]Constituent, []uint64, *Engine, *ResultCache) {
	w.qmu.RLock()
	w.mu.Lock()
	cons := make([]Constituent, len(w.cons))
	gens := make([]uint64, len(w.cons))
	for i, c := range w.cons {
		if !w.broken[i] {
			cons[i] = c
			gens[i] = w.gens[i]
		}
	}
	eng := w.eng
	rc := w.rc
	w.readers++
	w.mu.Unlock()
	return cons, gens, eng, rc
}

func (w *Wave) endQuery() {
	w.mu.Lock()
	w.readers--
	w.mu.Unlock()
	w.qmu.RUnlock()
}

// Retire disposes of a superseded constituent. With no query in flight it
// is dropped immediately (together with any previously deferred ones);
// otherwise the drop is deferred to a later Retire or DrainRetired on the
// maintenance goroutine, so observers never see drops from query
// goroutines. A nil c just drains.
func (w *Wave) Retire(c Constituent) error {
	w.mu.Lock()
	if w.readers > 0 {
		if c != nil {
			w.retired = append(w.retired, c)
		}
		w.mu.Unlock()
		return nil
	}
	pending := w.retired
	w.retired = nil
	w.mu.Unlock()
	var first error
	for _, old := range pending {
		if err := old.Drop(); err != nil && first == nil {
			first = err
		}
	}
	if c != nil {
		if err := c.Drop(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// SetRetire atomically replaces slot i's constituent and retires the
// previous occupant.
func (w *Wave) SetRetire(i int, c Constituent) error {
	w.mu.Lock()
	old := w.cons[i]
	w.cons[i] = c
	w.broken[i] = false
	w.bumpGenLocked(i)
	w.mu.Unlock()
	if old == nil || old == c {
		return nil
	}
	return w.Retire(old)
}

// DrainRetired drops every deferred-retired constituent, provided no
// query is in flight; with active readers the retirees stay deferred
// (they are dropped by the next Retire or DrainRetired that finds the
// wave quiescent). Used on the shutdown path.
func (w *Wave) DrainRetired() error {
	return w.Retire(nil)
}

// Locked runs fn under the wave's query-exclusion and slot locks; used by
// in-place updating, which mutates a live index and therefore must
// exclude queries.
func (w *Wave) Locked(fn func() error) error {
	w.qmu.Lock()
	defer w.qmu.Unlock()
	w.mu.Lock()
	defer w.mu.Unlock()
	return fn()
}

// MutateLocked is Locked for mutations of slot's live constituent: the
// slot's generation is advanced inside the critical section, before fn
// runs, so no query — they are all excluded until the locks release —
// can ever pair the old generation with the mutated contents. The bump
// happens whether fn succeeds or not: a failed mutation may have torn
// the index, and results cached under the old generation describe a
// constituent that no longer exists.
func (w *Wave) MutateLocked(slot int, fn func() error) error {
	w.qmu.Lock()
	defer w.qmu.Unlock()
	w.mu.Lock()
	defer w.mu.Unlock()
	w.bumpGenLocked(slot)
	return fn()
}

// Days returns the union of the constituents' time-sets, ascending.
func (w *Wave) Days() []int {
	w.mu.RLock()
	defer w.mu.RUnlock()
	seen := map[int]struct{}{}
	for _, c := range w.cons {
		if c == nil {
			continue
		}
		for _, d := range c.Days() {
			seen[d] = struct{}{}
		}
	}
	out := make([]int, 0, len(seen))
	for d := range seen {
		out = append(out, d)
	}
	sort.Ints(out)
	return out
}

// Length returns the total number of days currently indexed — the
// paper's length measure (Appendix B). For soft-window schemes this can
// exceed W.
func (w *Wave) Length() int {
	w.mu.RLock()
	defer w.mu.RUnlock()
	n := 0
	for _, c := range w.cons {
		if c != nil {
			n += c.NumDays()
		}
	}
	return n
}

// SizeBytes returns the total storage of the constituents.
func (w *Wave) SizeBytes() int64 {
	w.mu.RLock()
	defer w.mu.RUnlock()
	var n int64
	for _, c := range w.cons {
		if c != nil {
			n += c.SizeBytes()
		}
	}
	return n
}

// intersects reports whether the constituent's time-set meets [t1, t2].
// Constituents exposing cached day bounds decide the common cases — range
// disjoint from the bounds, or bounds contained in the range — in O(1);
// only a range falling inside a gap of a non-contiguous time-set pays the
// O(days) membership walk.
func intersects(c Constituent, t1, t2 int) bool {
	if b, ok := c.(DayBounder); ok {
		min, max, nonEmpty := b.DayBounds()
		if !nonEmpty || max < t1 || min > t2 {
			return false
		}
		if min >= t1 || max <= t2 {
			return true
		}
	}
	for _, d := range c.Days() {
		if d >= t1 && d <= t2 {
			return true
		}
	}
	return false
}

// searchTargets collects the qualifying constituents of a snapshot with
// their wave slots (for per-constituent trace attribution).
func searchTargets(cons []Constituent, t1, t2 int) ([]Searcher, []int, error) {
	var out []Searcher
	var slots []int
	for i, c := range cons {
		if c == nil || !intersects(c, t1, t2) {
			continue
		}
		s, ok := c.(Searcher)
		if !ok {
			return nil, nil, fmt.Errorf("core: constituent %T is not searchable", c)
		}
		out = append(out, s)
		slots = append(slots, i)
	}
	return out, slots, nil
}

// clampRange narrows [t1, t2] to the constituent's day bounds. Entries
// only exist inside the bounds, so the clamped probe returns identical
// results — but the clamped range is stable while the rest of the wave
// rolls, so a "whole window" query re-hits the cache on constituents the
// transition did not touch.
func clampRange(c Constituent, t1, t2 int) (int, int) {
	if b, ok := c.(DayBounder); ok {
		if lo, hi, nonEmpty := b.DayBounds(); nonEmpty {
			if t1 < lo {
				t1 = lo
			}
			if t2 > hi {
				t2 = hi
			}
		}
	}
	return t1, t2
}

// workersFor reports how many pool workers a query over n targets can
// actually use.
func workersFor(eng *Engine, n int) int64 {
	if p := eng.Parallelism(); p < n {
		return int64(p)
	}
	return int64(n)
}

// TimedIndexProbe retrieves the entries for search value key inserted
// between day t1 and t2 inclusive, probing only constituents whose
// clusters intersect the range and filtering entries by timestamp (§2.2).
// Per-constituent results arrive sorted, so they are merged; with at most
// one qualifying constituent its result is returned as is.
func (w *Wave) TimedIndexProbe(key string, t1, t2 int) ([]index.Entry, error) {
	return w.TimedIndexProbeCtx(context.Background(), key, t1, t2)
}

// TimedIndexProbeCtx is TimedIndexProbe with cancellation: the probe
// stops between constituents once ctx is done and returns ctx's error.
func (w *Wave) TimedIndexProbeCtx(ctx context.Context, key string, t1, t2 int) ([]index.Entry, error) {
	cons, gens, _, rc := w.beginQuery()
	defer w.endQuery()
	qm, tr := w.instrumentation()
	tid := TraceIDFrom(ctx)
	targets, slots, err := searchTargets(cons, t1, t2)
	if err != nil {
		return nil, err
	}
	qm.Constituents.Add(int64(len(targets)))
	qm.Workers.Observe(1)
	lists := make([][]index.Entry, 0, len(targets))
	for i, s := range targets {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		es, err := probeOne(s, cons[slots[i]], gens[slots[i]], rc, key, t1, t2, slots[i], tr, tid)
		if err != nil {
			return nil, err
		}
		if len(es) > 0 {
			lists = append(lists, es)
		}
	}
	return mergeEntryLists(lists), nil
}

// probeOne probes one constituent, going through the result cache when
// one is installed. Cached probes use the generation-stable clamped
// range; uncached probes keep the caller's range verbatim so a cache-off
// wave's behaviour (including its simulated disk cost) is unchanged.
func probeOne(s Searcher, c Constituent, gen uint64, rc *ResultCache, key string, t1, t2, slot int, tr Tracer, tid string) ([]index.Entry, error) {
	if rc == nil {
		start := time.Now()
		es, err := s.Probe(key, t1, t2)
		emit(tr, TraceEvent{
			Kind: "probe.constituent", Start: start, Duration: time.Since(start),
			Key: key, From: t1, To: t2, Constituent: slot, Entries: len(es), TraceID: tid, Err: err,
		})
		return es, err
	}
	ct1, ct2 := clampRange(c, t1, t2)
	if es, ok := rc.GetProbe(gen, key, ct1, ct2); ok {
		return es, nil
	}
	start := time.Now()
	es, err := s.Probe(key, ct1, ct2)
	emit(tr, TraceEvent{
		Kind: "probe.constituent", Start: start, Duration: time.Since(start),
		Key: key, From: ct1, To: ct2, Constituent: slot, Entries: len(es), TraceID: tid, Err: err,
	})
	if err != nil {
		return nil, err
	}
	rc.PutProbe(gen, key, ct1, ct2, es)
	return es, nil
}

// IndexProbe retrieves all entries for key across the whole wave,
// including any soft-window days older than the required window.
func (w *Wave) IndexProbe(key string) ([]index.Entry, error) {
	return w.TimedIndexProbe(key, minDay, maxDay)
}

// ParallelTimedIndexProbe is TimedIndexProbe with the per-constituent
// probes issued concurrently on the wave's engine — the multi-disk
// parallelism the paper's §8 identifies as a wave-index advantage over
// monolithic indexes. Results are byte-identical to TimedIndexProbe's.
func (w *Wave) ParallelTimedIndexProbe(key string, t1, t2 int) ([]index.Entry, error) {
	return w.ParallelTimedIndexProbeCtx(context.Background(), key, t1, t2)
}

// ParallelTimedIndexProbeCtx is ParallelTimedIndexProbe with
// cancellation: once ctx is done no further constituent probe starts,
// workers blocked on the pool stop waiting, and ctx's error is returned.
func (w *Wave) ParallelTimedIndexProbeCtx(ctx context.Context, key string, t1, t2 int) ([]index.Entry, error) {
	cons, gens, eng, rc := w.beginQuery()
	defer w.endQuery()
	qm, tr := w.instrumentation()
	tid := TraceIDFrom(ctx)
	targets, slots, err := searchTargets(cons, t1, t2)
	if err != nil {
		return nil, err
	}
	qm.Constituents.Add(int64(len(targets)))
	qm.Workers.Observe(workersFor(eng, len(targets)))
	lists := make([][]index.Entry, len(targets))
	err = eng.RunCtx(ctx, len(targets), func(i int) error {
		es, err := probeOne(targets[i], cons[slots[i]], gens[slots[i]], rc, key, t1, t2, slots[i], tr, tid)
		lists[i] = es
		return err
	})
	if err != nil {
		return nil, err
	}
	return mergeEntryLists(lists), nil
}

// MultiProbe retrieves the entries of several search values at once,
// keyed by search value (keys without entries are absent). The key batch
// is deduplicated and sorted, each qualifying constituent answers the
// whole batch in one pass (amortising directory lookups and seeks; see
// index.ProbeMulti), constituents run concurrently on the wave's engine,
// and per-key results are merged like TimedIndexProbe's.
func (w *Wave) MultiProbe(keys []string, t1, t2 int) (map[string][]index.Entry, error) {
	return w.MultiProbeCtx(context.Background(), keys, t1, t2)
}

// MultiProbeCtx is MultiProbe with cancellation: once ctx is done no
// further constituent batch starts and ctx's error is returned.
func (w *Wave) MultiProbeCtx(ctx context.Context, keys []string, t1, t2 int) (map[string][]index.Entry, error) {
	uniq := append([]string(nil), keys...)
	sort.Strings(uniq)
	n := 0
	for i, k := range uniq {
		if i == 0 || uniq[n-1] != k {
			uniq[n] = k
			n++
		}
	}
	uniq = uniq[:n]

	cons, gens, eng, rc := w.beginQuery()
	defer w.endQuery()
	qm, tr := w.instrumentation()
	tid := TraceIDFrom(ctx)
	targets, slots, err := searchTargets(cons, t1, t2)
	if err != nil {
		return nil, err
	}
	out := make(map[string][]index.Entry, len(uniq))
	if len(uniq) == 0 || len(targets) == 0 {
		return out, nil
	}
	qm.Constituents.Add(int64(len(targets)))
	qm.Workers.Observe(workersFor(eng, len(targets)))
	per := make([][][]index.Entry, len(targets))
	err = eng.RunCtx(ctx, len(targets), func(i int) error {
		ct1, ct2 := t1, t2
		gen := gens[slots[i]]
		r := make([][]index.Entry, len(uniq))
		// With a result cache, serve per-key hits from it and batch-probe
		// only the missing keys (a subsequence of uniq, so still sorted
		// and distinct as MultiSearcher requires).
		missing := uniq
		missIdx := make([]int, 0, len(uniq))
		if rc != nil {
			ct1, ct2 = clampRange(cons[slots[i]], t1, t2)
			missing = make([]string, 0, len(uniq))
			for j, k := range uniq {
				if es, ok := rc.GetProbe(gen, k, ct1, ct2); ok {
					r[j] = es
					continue
				}
				missing = append(missing, k)
				missIdx = append(missIdx, j)
			}
		} else {
			for j := range uniq {
				missIdx = append(missIdx, j)
			}
		}
		start := time.Now()
		err := func() error {
			if len(missing) == 0 {
				return nil
			}
			if ms, ok := targets[i].(MultiSearcher); ok {
				res, err := ms.MultiProbe(missing, ct1, ct2)
				if err != nil {
					return err
				}
				for jj, es := range res {
					r[missIdx[jj]] = es
					rc.PutProbe(gen, missing[jj], ct1, ct2, es)
				}
				return nil
			}
			for jj, k := range missing {
				es, err := targets[i].Probe(k, ct1, ct2)
				if err != nil {
					return err
				}
				r[missIdx[jj]] = es
				rc.PutProbe(gen, k, ct1, ct2, es)
			}
			return nil
		}()
		if err == nil {
			per[i] = r
		}
		emit(tr, TraceEvent{
			Kind: "mprobe.constituent", Start: start, Duration: time.Since(start),
			Keys: len(missing), From: ct1, To: ct2, Constituent: slots[i], TraceID: tid, Err: err,
		})
		return err
	})
	if err != nil {
		return nil, err
	}
	lists := make([][]index.Entry, 0, len(targets))
	for j, k := range uniq {
		lists = lists[:0]
		for i := range targets {
			if es := per[i][j]; len(es) > 0 {
				lists = append(lists, es)
			}
		}
		if merged := mergeEntryLists(lists); len(merged) > 0 {
			out[k] = merged
		}
	}
	return out, nil
}

// TimedSegmentScan visits every entry inserted between day t1 and t2 in
// ascending key order across the whole wave — qualifying constituents
// scan concurrently on the wave's engine and their key-ordered streams
// are heap-merged, with entries of one key visited in wave slot order.
// fn runs on the caller's goroutine; returning false stops the scan.
func (w *Wave) TimedSegmentScan(t1, t2 int, fn func(key string, e index.Entry) bool) error {
	return w.TimedSegmentScanCtx(context.Background(), t1, t2, fn)
}

// TimedSegmentScanCtx is TimedSegmentScan with cancellation: once ctx is
// done the producers abort at their next callback, the merge stops, and
// ctx's error is returned. All producer goroutines are joined before
// returning, so no pool worker leaks.
func (w *Wave) TimedSegmentScanCtx(ctx context.Context, t1, t2 int, fn func(key string, e index.Entry) bool) error {
	cons, _, eng, _ := w.beginQuery()
	defer w.endQuery()
	qm, tr := w.instrumentation()
	tid := TraceIDFrom(ctx)
	targets, slots, err := searchTargets(cons, t1, t2)
	if err != nil {
		return err
	}
	qm.Constituents.Add(int64(len(targets)))
	switch len(targets) {
	case 0:
		return ctx.Err()
	case 1:
		// One stream: the merge would reproduce the scan verbatim.
		qm.Workers.Observe(1)
		qm.MergeDepth.Observe(1)
		if err := ctx.Err(); err != nil {
			return err
		}
		start := time.Now()
		stopped := false
		entries := 0
		err = targets[0].Scan(t1, t2, func(k string, e index.Entry) bool {
			entries++
			// Cancellation is polled every 1024 entries so an idle ctx
			// costs nothing on the per-entry hot path.
			if entries&1023 == 0 && ctx.Err() != nil {
				return false
			}
			if !fn(k, e) {
				stopped = true
				return false
			}
			return true
		})
		emit(tr, TraceEvent{
			Kind: "scan.constituent", Start: start, Duration: time.Since(start),
			From: t1, To: t2, Constituent: slots[0], Entries: entries, TraceID: tid, Err: err,
		})
		if cerr := ctx.Err(); cerr != nil {
			return cerr
		}
		if stopped {
			qm.EarlyStops.Inc()
		}
		return err
	}
	qm.Workers.Observe(workersFor(eng, len(targets)))
	qm.MergeDepth.Observe(int64(len(targets)))
	done := make(chan struct{})
	streams := make([]*scanStream, len(targets))
	var wg sync.WaitGroup
	for i, s := range targets {
		st := &scanStream{ch: make(chan keyGroup, scanStreamBuf), slot: slots[i]}
		streams[i] = st
		wg.Add(1)
		go func(s Searcher, st *scanStream) {
			defer wg.Done()
			produceScan(ctx, eng, s, t1, t2, st, done, tr)
		}(s, st)
	}
	stopped := consumeScanStreams(ctx, streams, fn)
	close(done)
	for _, st := range streams {
		for range st.ch {
		}
	}
	wg.Wait()
	if stopped {
		qm.EarlyStops.Inc()
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	for _, st := range streams {
		if st.err != nil {
			return st.err
		}
	}
	return nil
}

// SegmentScan visits every entry in the wave (soft-window extras
// included).
func (w *Wave) SegmentScan(fn func(key string, e index.Entry) bool) error {
	return w.TimedSegmentScan(minDay, maxDay, fn)
}

const (
	minDay = -1 << 30
	maxDay = 1 << 30
)

// aggPlan is the shared preamble of the memoized aggregates: the pinned
// snapshot's qualifying targets plus everything the per-constituent
// workers need. It is only built when a result cache is installed;
// callers without one fall back to the scan-derived (byte-identical)
// aggregate path.
type aggPlan struct {
	targets []Searcher
	cons    []Constituent // aligned with targets
	gens    []uint64      // aligned with targets
	eng     *Engine
	rc      *ResultCache
}

// aggBegin pins a query snapshot and builds the aggregate plan. The
// returned end func must be called exactly once (it releases the
// snapshot); ok is false when no result cache is installed.
func (w *Wave) aggBegin(t1, t2 int) (plan aggPlan, end func(), ok bool, err error) {
	cons, gens, eng, rc := w.beginQuery()
	end = w.endQuery
	if rc == nil {
		return aggPlan{}, end, false, nil
	}
	targets, slots, err := searchTargets(cons, t1, t2)
	if err != nil {
		return aggPlan{}, end, true, err
	}
	qm, _ := w.instrumentation()
	qm.Constituents.Add(int64(len(targets)))
	qm.Workers.Observe(workersFor(eng, len(targets)))
	plan = aggPlan{targets: targets, eng: eng, rc: rc}
	plan.cons = make([]Constituent, len(targets))
	plan.gens = make([]uint64, len(targets))
	for i, slot := range slots {
		plan.cons[i] = cons[slot]
		plan.gens[i] = gens[slot]
	}
	return plan, end, true, nil
}

// AggCountCtx counts the entries in [t1, t2], summing per-constituent
// counts memoized in the result cache. ok is false when no cache is
// installed (callers should then derive the count from a scan).
func (w *Wave) AggCountCtx(ctx context.Context, t1, t2 int) (n int, ok bool, err error) {
	plan, end, ok, err := w.aggBegin(t1, t2)
	defer end()
	if !ok || err != nil {
		return 0, ok, err
	}
	counts := make([]int, len(plan.targets))
	err = plan.eng.RunCtx(ctx, len(plan.targets), func(i int) error {
		ct1, ct2 := clampRange(plan.cons[i], t1, t2)
		if v, hit := plan.rc.GetCount(plan.gens[i], ct1, ct2); hit {
			counts[i] = v
			return nil
		}
		v := 0
		if err := plan.targets[i].Scan(ct1, ct2, func(string, index.Entry) bool { v++; return true }); err != nil {
			return err
		}
		plan.rc.PutCount(plan.gens[i], ct1, ct2, v)
		counts[i] = v
		return nil
	})
	if err != nil {
		return 0, true, err
	}
	for _, v := range counts {
		n += v
	}
	return n, true, nil
}

// AggDayCountsCtx returns per-day entry counts over [t1, t2], summing
// per-constituent day histograms memoized in the result cache. The
// returned map is freshly allocated. ok is false when no cache is
// installed.
func (w *Wave) AggDayCountsCtx(ctx context.Context, t1, t2 int) (out map[int]int, ok bool, err error) {
	plan, end, ok, err := w.aggBegin(t1, t2)
	defer end()
	if !ok || err != nil {
		return nil, ok, err
	}
	per := make([]map[int]int, len(plan.targets))
	err = plan.eng.RunCtx(ctx, len(plan.targets), func(i int) error {
		ct1, ct2 := clampRange(plan.cons[i], t1, t2)
		if m, hit := plan.rc.GetDayCounts(plan.gens[i], ct1, ct2); hit {
			per[i] = m
			return nil
		}
		m := make(map[int]int)
		if err := plan.targets[i].Scan(ct1, ct2, func(_ string, e index.Entry) bool {
			m[int(e.Day)]++
			return true
		}); err != nil {
			return err
		}
		plan.rc.PutDayCounts(plan.gens[i], ct1, ct2, m)
		per[i] = m
		return nil
	})
	if err != nil {
		return nil, true, err
	}
	out = make(map[int]int)
	for _, m := range per {
		for d, v := range m {
			out[d] += v
		}
	}
	return out, true, nil
}

// AggKeyCountsCtx returns per-key entry counts over [t1, t2], summing
// per-constituent key frequency maps memoized in the result cache. The
// returned map is freshly allocated. ok is false when no cache is
// installed.
func (w *Wave) AggKeyCountsCtx(ctx context.Context, t1, t2 int) (out map[string]int, ok bool, err error) {
	plan, end, ok, err := w.aggBegin(t1, t2)
	defer end()
	if !ok || err != nil {
		return nil, ok, err
	}
	per := make([]map[string]int, len(plan.targets))
	err = plan.eng.RunCtx(ctx, len(plan.targets), func(i int) error {
		ct1, ct2 := clampRange(plan.cons[i], t1, t2)
		if m, hit := plan.rc.GetKeyCounts(plan.gens[i], ct1, ct2); hit {
			per[i] = m
			return nil
		}
		m := make(map[string]int)
		if err := plan.targets[i].Scan(ct1, ct2, func(k string, _ index.Entry) bool {
			m[k]++
			return true
		}); err != nil {
			return err
		}
		plan.rc.PutKeyCounts(plan.gens[i], ct1, ct2, m)
		per[i] = m
		return nil
	})
	if err != nil {
		return nil, true, err
	}
	out = make(map[string]int)
	for _, m := range per {
		for k, v := range m {
			out[k] += v
		}
	}
	return out, true, nil
}

// sortEntries orders probe results by (day, record) so results are
// deterministic regardless of how days are clustered across constituents.
func sortEntries(es []index.Entry) { index.SortEntries(es) }
