package core

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"time"

	"waveindex/internal/index"
)

// Searcher is the query surface of data-bearing constituents.
type Searcher interface {
	Probe(key string, t1, t2 int) ([]index.Entry, error)
	Scan(t1, t2 int, fn func(key string, e index.Entry) bool) error
}

// MultiSearcher is implemented by constituents that can answer a batch of
// probes in one pass, amortising directory lookups and seeks.
type MultiSearcher interface {
	// MultiProbe returns per-key entry lists aligned with keys (nil for
	// absent keys), each sorted by (day, record, aux). keys must be
	// distinct.
	MultiProbe(keys []string, t1, t2 int) ([][]index.Entry, error)
}

// DayBounder is implemented by constituents that can report the bounds of
// their time-set in O(1).
type DayBounder interface {
	DayBounds() (min, max int, ok bool)
}

// Wave is the queryable wave index Theta: the current set of constituent
// indexes. Queries take a snapshot of the constituents and run against it
// without holding the wave lock, so maintenance can publish new
// constituents while long scans are in flight; a superseded constituent
// is retired — its storage release deferred until no query still holds a
// snapshot referencing it. In-place updates, which mutate a live index,
// still exclude queries via a dedicated query lock (§2.1).
type Wave struct {
	// mu guards the constituent slots and the retirement bookkeeping; it
	// is held only for short critical sections, never across IO.
	mu sync.RWMutex
	// qmu is held in read mode for the whole of every query and in write
	// mode by in-place updates, which are the only maintenance operations
	// that mutate an index queries may be reading. Shadow publishing does
	// not touch qmu, so it never waits on a long scan. Lock order:
	// qmu before mu.
	qmu     sync.RWMutex
	cons    []Constituent
	broken  []bool // slots whose constituent is torn or missing; queries skip them
	eng     *Engine
	readers int           // queries holding a snapshot
	retired []Constituent // superseded while readers > 0; dropped later

	// qm and tracer are the engine's observability hooks, settable via
	// SetInstrumentation. qm is held by value: the zero value's nil
	// handles are no-ops, so uninstrumented queries record nothing.
	qm     QueryMetrics
	tracer Tracer
}

// NewWave returns a wave with n empty slots and a query engine sized to
// n — one potential reader per constituent.
func NewWave(n int) *Wave {
	return &Wave{cons: make([]Constituent, n), broken: make([]bool, n), eng: NewEngine(n)}
}

// SetParallelism resizes the query engine's pool. In-flight queries keep
// the pool they started with.
func (w *Wave) SetParallelism(p int) {
	w.mu.Lock()
	w.eng = NewEngine(p)
	w.mu.Unlock()
}

// Parallelism returns the query engine's concurrency bound.
func (w *Wave) Parallelism() int {
	w.mu.RLock()
	defer w.mu.RUnlock()
	return w.eng.Parallelism()
}

// N returns the number of constituent slots.
func (w *Wave) N() int {
	w.mu.RLock()
	defer w.mu.RUnlock()
	return len(w.cons)
}

// Get returns the constituent in slot i (may be nil before Start).
func (w *Wave) Get(i int) Constituent {
	w.mu.RLock()
	defer w.mu.RUnlock()
	return w.cons[i]
}

// Set publishes c in slot i, clearing any broken mark: a freshly
// published constituent is whole.
func (w *Wave) Set(i int, c Constituent) {
	w.mu.Lock()
	w.cons[i] = c
	w.broken[i] = false
	w.mu.Unlock()
}

// MarkBroken flags slot i as broken after a failed mutation: queries skip
// the slot (degrading to the surviving constituents instead of erroring
// or panicking on torn state) and Degraded reports true until a new
// constituent is published into the slot.
func (w *Wave) MarkBroken(i int) {
	w.mu.Lock()
	w.broken[i] = true
	w.mu.Unlock()
}

// Degraded reports whether any slot is broken, i.e. queries are being
// served from a subset of the wave.
func (w *Wave) Degraded() bool {
	w.mu.RLock()
	defer w.mu.RUnlock()
	for _, b := range w.broken {
		if b {
			return true
		}
	}
	return false
}

// BrokenSlots returns the indices of broken slots.
func (w *Wave) BrokenSlots() []int {
	w.mu.RLock()
	defer w.mu.RUnlock()
	var out []int
	for i, b := range w.broken {
		if b {
			out = append(out, i)
		}
	}
	return out
}

// Snapshot returns the current constituents.
func (w *Wave) Snapshot() []Constituent {
	w.mu.RLock()
	defer w.mu.RUnlock()
	return append([]Constituent(nil), w.cons...)
}

// beginQuery registers a query: it pins the current constituents so
// retirement defers their release, and returns them with the engine to
// run on. Every beginQuery must be paired with endQuery.
func (w *Wave) beginQuery() ([]Constituent, *Engine) {
	w.qmu.RLock()
	w.mu.Lock()
	cons := make([]Constituent, len(w.cons))
	for i, c := range w.cons {
		if !w.broken[i] {
			cons[i] = c
		}
	}
	eng := w.eng
	w.readers++
	w.mu.Unlock()
	return cons, eng
}

func (w *Wave) endQuery() {
	w.mu.Lock()
	w.readers--
	w.mu.Unlock()
	w.qmu.RUnlock()
}

// Retire disposes of a superseded constituent. With no query in flight it
// is dropped immediately (together with any previously deferred ones);
// otherwise the drop is deferred to a later Retire or DrainRetired on the
// maintenance goroutine, so observers never see drops from query
// goroutines. A nil c just drains.
func (w *Wave) Retire(c Constituent) error {
	w.mu.Lock()
	if w.readers > 0 {
		if c != nil {
			w.retired = append(w.retired, c)
		}
		w.mu.Unlock()
		return nil
	}
	pending := w.retired
	w.retired = nil
	w.mu.Unlock()
	var first error
	for _, old := range pending {
		if err := old.Drop(); err != nil && first == nil {
			first = err
		}
	}
	if c != nil {
		if err := c.Drop(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// SetRetire atomically replaces slot i's constituent and retires the
// previous occupant.
func (w *Wave) SetRetire(i int, c Constituent) error {
	w.mu.Lock()
	old := w.cons[i]
	w.cons[i] = c
	w.broken[i] = false
	w.mu.Unlock()
	if old == nil || old == c {
		return nil
	}
	return w.Retire(old)
}

// DrainRetired drops every deferred-retired constituent, provided no
// query is in flight; with active readers the retirees stay deferred
// (they are dropped by the next Retire or DrainRetired that finds the
// wave quiescent). Used on the shutdown path.
func (w *Wave) DrainRetired() error {
	return w.Retire(nil)
}

// Locked runs fn under the wave's query-exclusion and slot locks; used by
// in-place updating, which mutates a live index and therefore must
// exclude queries.
func (w *Wave) Locked(fn func() error) error {
	w.qmu.Lock()
	defer w.qmu.Unlock()
	w.mu.Lock()
	defer w.mu.Unlock()
	return fn()
}

// Days returns the union of the constituents' time-sets, ascending.
func (w *Wave) Days() []int {
	w.mu.RLock()
	defer w.mu.RUnlock()
	seen := map[int]struct{}{}
	for _, c := range w.cons {
		if c == nil {
			continue
		}
		for _, d := range c.Days() {
			seen[d] = struct{}{}
		}
	}
	out := make([]int, 0, len(seen))
	for d := range seen {
		out = append(out, d)
	}
	sort.Ints(out)
	return out
}

// Length returns the total number of days currently indexed — the
// paper's length measure (Appendix B). For soft-window schemes this can
// exceed W.
func (w *Wave) Length() int {
	w.mu.RLock()
	defer w.mu.RUnlock()
	n := 0
	for _, c := range w.cons {
		if c != nil {
			n += c.NumDays()
		}
	}
	return n
}

// SizeBytes returns the total storage of the constituents.
func (w *Wave) SizeBytes() int64 {
	w.mu.RLock()
	defer w.mu.RUnlock()
	var n int64
	for _, c := range w.cons {
		if c != nil {
			n += c.SizeBytes()
		}
	}
	return n
}

// intersects reports whether the constituent's time-set meets [t1, t2].
// Constituents exposing cached day bounds decide the common cases — range
// disjoint from the bounds, or bounds contained in the range — in O(1);
// only a range falling inside a gap of a non-contiguous time-set pays the
// O(days) membership walk.
func intersects(c Constituent, t1, t2 int) bool {
	if b, ok := c.(DayBounder); ok {
		min, max, nonEmpty := b.DayBounds()
		if !nonEmpty || max < t1 || min > t2 {
			return false
		}
		if min >= t1 || max <= t2 {
			return true
		}
	}
	for _, d := range c.Days() {
		if d >= t1 && d <= t2 {
			return true
		}
	}
	return false
}

// searchTargets collects the qualifying constituents of a snapshot with
// their wave slots (for per-constituent trace attribution).
func searchTargets(cons []Constituent, t1, t2 int) ([]Searcher, []int, error) {
	var out []Searcher
	var slots []int
	for i, c := range cons {
		if c == nil || !intersects(c, t1, t2) {
			continue
		}
		s, ok := c.(Searcher)
		if !ok {
			return nil, nil, fmt.Errorf("core: constituent %T is not searchable", c)
		}
		out = append(out, s)
		slots = append(slots, i)
	}
	return out, slots, nil
}

// workersFor reports how many pool workers a query over n targets can
// actually use.
func workersFor(eng *Engine, n int) int64 {
	if p := eng.Parallelism(); p < n {
		return int64(p)
	}
	return int64(n)
}

// TimedIndexProbe retrieves the entries for search value key inserted
// between day t1 and t2 inclusive, probing only constituents whose
// clusters intersect the range and filtering entries by timestamp (§2.2).
// Per-constituent results arrive sorted, so they are merged; with at most
// one qualifying constituent its result is returned as is.
func (w *Wave) TimedIndexProbe(key string, t1, t2 int) ([]index.Entry, error) {
	return w.TimedIndexProbeCtx(context.Background(), key, t1, t2)
}

// TimedIndexProbeCtx is TimedIndexProbe with cancellation: the probe
// stops between constituents once ctx is done and returns ctx's error.
func (w *Wave) TimedIndexProbeCtx(ctx context.Context, key string, t1, t2 int) ([]index.Entry, error) {
	cons, _ := w.beginQuery()
	defer w.endQuery()
	qm, tr := w.instrumentation()
	tid := TraceIDFrom(ctx)
	targets, slots, err := searchTargets(cons, t1, t2)
	if err != nil {
		return nil, err
	}
	qm.Constituents.Add(int64(len(targets)))
	qm.Workers.Observe(1)
	lists := make([][]index.Entry, 0, len(targets))
	for i, s := range targets {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		start := time.Now()
		es, err := s.Probe(key, t1, t2)
		emit(tr, TraceEvent{
			Kind: "probe.constituent", Start: start, Duration: time.Since(start),
			Key: key, From: t1, To: t2, Constituent: slots[i], Entries: len(es), TraceID: tid, Err: err,
		})
		if err != nil {
			return nil, err
		}
		if len(es) > 0 {
			lists = append(lists, es)
		}
	}
	return mergeEntryLists(lists), nil
}

// IndexProbe retrieves all entries for key across the whole wave,
// including any soft-window days older than the required window.
func (w *Wave) IndexProbe(key string) ([]index.Entry, error) {
	return w.TimedIndexProbe(key, minDay, maxDay)
}

// ParallelTimedIndexProbe is TimedIndexProbe with the per-constituent
// probes issued concurrently on the wave's engine — the multi-disk
// parallelism the paper's §8 identifies as a wave-index advantage over
// monolithic indexes. Results are byte-identical to TimedIndexProbe's.
func (w *Wave) ParallelTimedIndexProbe(key string, t1, t2 int) ([]index.Entry, error) {
	return w.ParallelTimedIndexProbeCtx(context.Background(), key, t1, t2)
}

// ParallelTimedIndexProbeCtx is ParallelTimedIndexProbe with
// cancellation: once ctx is done no further constituent probe starts,
// workers blocked on the pool stop waiting, and ctx's error is returned.
func (w *Wave) ParallelTimedIndexProbeCtx(ctx context.Context, key string, t1, t2 int) ([]index.Entry, error) {
	cons, eng := w.beginQuery()
	defer w.endQuery()
	qm, tr := w.instrumentation()
	tid := TraceIDFrom(ctx)
	targets, slots, err := searchTargets(cons, t1, t2)
	if err != nil {
		return nil, err
	}
	qm.Constituents.Add(int64(len(targets)))
	qm.Workers.Observe(workersFor(eng, len(targets)))
	lists := make([][]index.Entry, len(targets))
	err = eng.RunCtx(ctx, len(targets), func(i int) error {
		start := time.Now()
		es, err := targets[i].Probe(key, t1, t2)
		emit(tr, TraceEvent{
			Kind: "probe.constituent", Start: start, Duration: time.Since(start),
			Key: key, From: t1, To: t2, Constituent: slots[i], Entries: len(es), TraceID: tid, Err: err,
		})
		lists[i] = es
		return err
	})
	if err != nil {
		return nil, err
	}
	return mergeEntryLists(lists), nil
}

// MultiProbe retrieves the entries of several search values at once,
// keyed by search value (keys without entries are absent). The key batch
// is deduplicated and sorted, each qualifying constituent answers the
// whole batch in one pass (amortising directory lookups and seeks; see
// index.ProbeMulti), constituents run concurrently on the wave's engine,
// and per-key results are merged like TimedIndexProbe's.
func (w *Wave) MultiProbe(keys []string, t1, t2 int) (map[string][]index.Entry, error) {
	return w.MultiProbeCtx(context.Background(), keys, t1, t2)
}

// MultiProbeCtx is MultiProbe with cancellation: once ctx is done no
// further constituent batch starts and ctx's error is returned.
func (w *Wave) MultiProbeCtx(ctx context.Context, keys []string, t1, t2 int) (map[string][]index.Entry, error) {
	uniq := append([]string(nil), keys...)
	sort.Strings(uniq)
	n := 0
	for i, k := range uniq {
		if i == 0 || uniq[n-1] != k {
			uniq[n] = k
			n++
		}
	}
	uniq = uniq[:n]

	cons, eng := w.beginQuery()
	defer w.endQuery()
	qm, tr := w.instrumentation()
	tid := TraceIDFrom(ctx)
	targets, slots, err := searchTargets(cons, t1, t2)
	if err != nil {
		return nil, err
	}
	out := make(map[string][]index.Entry, len(uniq))
	if len(uniq) == 0 || len(targets) == 0 {
		return out, nil
	}
	qm.Constituents.Add(int64(len(targets)))
	qm.Workers.Observe(workersFor(eng, len(targets)))
	per := make([][][]index.Entry, len(targets))
	err = eng.RunCtx(ctx, len(targets), func(i int) error {
		start := time.Now()
		err := func() error {
			if ms, ok := targets[i].(MultiSearcher); ok {
				r, err := ms.MultiProbe(uniq, t1, t2)
				per[i] = r
				return err
			}
			r := make([][]index.Entry, len(uniq))
			for j, k := range uniq {
				es, err := targets[i].Probe(k, t1, t2)
				if err != nil {
					return err
				}
				r[j] = es
			}
			per[i] = r
			return nil
		}()
		emit(tr, TraceEvent{
			Kind: "mprobe.constituent", Start: start, Duration: time.Since(start),
			Keys: len(uniq), From: t1, To: t2, Constituent: slots[i], TraceID: tid, Err: err,
		})
		return err
	})
	if err != nil {
		return nil, err
	}
	lists := make([][]index.Entry, 0, len(targets))
	for j, k := range uniq {
		lists = lists[:0]
		for i := range targets {
			if es := per[i][j]; len(es) > 0 {
				lists = append(lists, es)
			}
		}
		if merged := mergeEntryLists(lists); len(merged) > 0 {
			out[k] = merged
		}
	}
	return out, nil
}

// TimedSegmentScan visits every entry inserted between day t1 and t2 in
// ascending key order across the whole wave — qualifying constituents
// scan concurrently on the wave's engine and their key-ordered streams
// are heap-merged, with entries of one key visited in wave slot order.
// fn runs on the caller's goroutine; returning false stops the scan.
func (w *Wave) TimedSegmentScan(t1, t2 int, fn func(key string, e index.Entry) bool) error {
	return w.TimedSegmentScanCtx(context.Background(), t1, t2, fn)
}

// TimedSegmentScanCtx is TimedSegmentScan with cancellation: once ctx is
// done the producers abort at their next callback, the merge stops, and
// ctx's error is returned. All producer goroutines are joined before
// returning, so no pool worker leaks.
func (w *Wave) TimedSegmentScanCtx(ctx context.Context, t1, t2 int, fn func(key string, e index.Entry) bool) error {
	cons, eng := w.beginQuery()
	defer w.endQuery()
	qm, tr := w.instrumentation()
	tid := TraceIDFrom(ctx)
	targets, slots, err := searchTargets(cons, t1, t2)
	if err != nil {
		return err
	}
	qm.Constituents.Add(int64(len(targets)))
	switch len(targets) {
	case 0:
		return ctx.Err()
	case 1:
		// One stream: the merge would reproduce the scan verbatim.
		qm.Workers.Observe(1)
		qm.MergeDepth.Observe(1)
		if err := ctx.Err(); err != nil {
			return err
		}
		start := time.Now()
		stopped := false
		entries := 0
		err = targets[0].Scan(t1, t2, func(k string, e index.Entry) bool {
			entries++
			// Cancellation is polled every 1024 entries so an idle ctx
			// costs nothing on the per-entry hot path.
			if entries&1023 == 0 && ctx.Err() != nil {
				return false
			}
			if !fn(k, e) {
				stopped = true
				return false
			}
			return true
		})
		emit(tr, TraceEvent{
			Kind: "scan.constituent", Start: start, Duration: time.Since(start),
			From: t1, To: t2, Constituent: slots[0], Entries: entries, TraceID: tid, Err: err,
		})
		if cerr := ctx.Err(); cerr != nil {
			return cerr
		}
		if stopped {
			qm.EarlyStops.Inc()
		}
		return err
	}
	qm.Workers.Observe(workersFor(eng, len(targets)))
	qm.MergeDepth.Observe(int64(len(targets)))
	done := make(chan struct{})
	streams := make([]*scanStream, len(targets))
	var wg sync.WaitGroup
	for i, s := range targets {
		st := &scanStream{ch: make(chan keyGroup, scanStreamBuf), slot: slots[i]}
		streams[i] = st
		wg.Add(1)
		go func(s Searcher, st *scanStream) {
			defer wg.Done()
			produceScan(ctx, eng, s, t1, t2, st, done, tr)
		}(s, st)
	}
	stopped := consumeScanStreams(ctx, streams, fn)
	close(done)
	for _, st := range streams {
		for range st.ch {
		}
	}
	wg.Wait()
	if stopped {
		qm.EarlyStops.Inc()
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	for _, st := range streams {
		if st.err != nil {
			return st.err
		}
	}
	return nil
}

// SegmentScan visits every entry in the wave (soft-window extras
// included).
func (w *Wave) SegmentScan(fn func(key string, e index.Entry) bool) error {
	return w.TimedSegmentScan(minDay, maxDay, fn)
}

const (
	minDay = -1 << 30
	maxDay = 1 << 30
)

// sortEntries orders probe results by (day, record) so results are
// deterministic regardless of how days are clustered across constituents.
func sortEntries(es []index.Entry) { index.SortEntries(es) }
