package core

import (
	"fmt"

	"waveindex/internal/index"
	"waveindex/internal/simdisk"
)

// DataBackend creates real data-bearing constituent indexes on a block
// store, fetching day batches from a DataSource. Its constituents
// implement Searcher, so waves built on it answer probes and scans.
type DataBackend struct {
	store simdisk.BlockStore
	opts  index.Options
	src   DataSource
	obs   Observer
}

// NewDataBackend returns a backend building indexes on store with the
// given options, reading day data from src. The observer may be nil.
func NewDataBackend(store simdisk.BlockStore, opts index.Options, src DataSource, obs Observer) *DataBackend {
	if obs == nil {
		obs = NopObserver{}
	}
	return &DataBackend{store: store, opts: opts, src: src, obs: obs}
}

// fetchBatches reads the given days' batches from src, sequentially:
// DataSource implementations are not required to be concurrency-safe.
func fetchBatches(src DataSource, days []int) ([]*index.Batch, error) {
	out := make([]*index.Batch, 0, len(days))
	for _, d := range days {
		b, err := src.Day(d)
		if err != nil {
			return nil, err
		}
		out = append(out, b)
	}
	return out, nil
}

func (bk *DataBackend) batches(days []int) ([]*index.Batch, error) {
	return fetchBatches(bk.src, days)
}

// buildFrom builds a packed constituent from already-fetched batches
// without reporting to the observer — the piece of Build that is safe to
// run off the maintenance goroutine (see MultiDiskBackend.BuildMany).
func (bk *DataBackend) buildFrom(bs []*index.Batch) (*dataConstituent, error) {
	idx, err := index.BuildPacked(bk.store, bk.opts, bs...)
	if err != nil {
		return nil, err
	}
	return &dataConstituent{bk: bk, idx: idx}, nil
}

// Build implements Backend.
func (bk *DataBackend) Build(days ...int) (Constituent, error) {
	bs, err := bk.batches(days)
	if err != nil {
		return nil, err
	}
	c, err := bk.buildFrom(bs)
	if err != nil {
		return nil, err
	}
	bk.obs.RecordOp(OpBuild, days)
	return c, nil
}

// Empty implements Backend.
func (bk *DataBackend) Empty() (Constituent, error) {
	return &dataConstituent{bk: bk, idx: index.NewEmpty(bk.store, bk.opts)}, nil
}

// dataConstituent adapts index.Index to the Constituent and Searcher
// interfaces.
type dataConstituent struct {
	bk  *DataBackend
	idx *index.Index
}

func (c *dataConstituent) Days() []int       { return c.idx.Days() }
func (c *dataConstituent) NumDays() int      { return c.idx.NumDays() }
func (c *dataConstituent) HasDay(d int) bool { return c.idx.HasDay(d) }
func (c *dataConstituent) SizeBytes() int64  { return c.idx.SizeBytes() }

func (c *dataConstituent) AddDays(days ...int) error {
	bs, err := c.bk.batches(days)
	if err != nil {
		return err
	}
	if err := c.idx.Add(bs...); err != nil {
		return err
	}
	c.bk.obs.RecordOp(OpAdd, days)
	return nil
}

func (c *dataConstituent) DeleteDays(days ...int) error {
	if err := c.idx.Delete(days...); err != nil {
		return err
	}
	c.bk.obs.RecordOp(OpDelete, days)
	return nil
}

func (c *dataConstituent) Clone() (Constituent, error) {
	cp, err := c.idx.Clone()
	if err != nil {
		return nil, err
	}
	c.bk.obs.RecordOp(OpCopy, c.idx.Days())
	return &dataConstituent{bk: c.bk, idx: cp}, nil
}

func (c *dataConstituent) PackedMerge(del, add []int) (Constituent, error) {
	bs, err := c.bk.batches(add)
	if err != nil {
		return nil, err
	}
	if len(add) > 0 {
		c.bk.obs.RecordOp(OpBuild, add)
	}
	merged, err := c.idx.PackedMerge(del, bs...)
	if err != nil {
		return nil, err
	}
	c.bk.obs.RecordOp(OpSmartCopy, c.idx.Days())
	return &dataConstituent{bk: c.bk, idx: merged}, nil
}

func (c *dataConstituent) Drop() error {
	c.bk.obs.RecordOp(OpDropIndex, nil)
	return c.idx.Drop()
}

// Probe implements Searcher.
func (c *dataConstituent) Probe(key string, t1, t2 int) ([]index.Entry, error) {
	return c.idx.Probe(key, t1, t2)
}

// Scan implements Searcher.
func (c *dataConstituent) Scan(t1, t2 int, fn func(string, index.Entry) bool) error {
	return c.idx.Scan(t1, t2, fn)
}

// MultiProbe implements MultiSearcher: the key batch is answered in one
// pass over the index with buckets read in disk order.
func (c *dataConstituent) MultiProbe(keys []string, t1, t2 int) ([][]index.Entry, error) {
	return c.idx.ProbeMulti(keys, t1, t2)
}

// DayBounds implements DayBounder with the index's cached bounds.
func (c *dataConstituent) DayBounds() (min, max int, ok bool) {
	return c.idx.DayBounds()
}

// Index exposes the underlying index (diagnostics and tests).
func (c *dataConstituent) Index() *index.Index { return c.idx }

// String aids debugging.
func (c *dataConstituent) String() string {
	return fmt.Sprintf("data%v", c.idx.Days())
}
