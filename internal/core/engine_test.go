package core

import (
	"errors"
	"fmt"
	"math/rand"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"

	"waveindex/internal/index"
)

func TestEngineRunBounds(t *testing.T) {
	eng := NewEngine(3)
	if eng.Parallelism() != 3 {
		t.Fatalf("Parallelism() = %d, want 3", eng.Parallelism())
	}
	var cur, peak atomic.Int32
	err := eng.Run(20, func(i int) error {
		c := cur.Add(1)
		for {
			p := peak.Load()
			if c <= p || peak.CompareAndSwap(p, c) {
				break
			}
		}
		defer cur.Add(-1)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if p := peak.Load(); p > 3 {
		t.Errorf("observed %d concurrent tasks, bound is 3", p)
	}
}

func TestEngineRunFirstErrorByIndex(t *testing.T) {
	eng := NewEngine(4)
	errA, errB := errors.New("a"), errors.New("b")
	err := eng.Run(6, func(i int) error {
		switch i {
		case 2:
			return errA
		case 4:
			return errB
		}
		return nil
	})
	if err != errA {
		t.Errorf("Run returned %v, want the lowest-index error %v", err, errA)
	}
}

func TestEngineClampsParallelism(t *testing.T) {
	if p := NewEngine(0).Parallelism(); p != 1 {
		t.Errorf("NewEngine(0).Parallelism() = %d, want 1", p)
	}
	if p := NewEngine(-3).Parallelism(); p != 1 {
		t.Errorf("NewEngine(-3).Parallelism() = %d, want 1", p)
	}
}

// collectScan gathers a scan's output as (key, entry) pairs in visit
// order.
type scanPair struct {
	key string
	e   index.Entry
}

func collectScan(t *testing.T, w *Wave, t1, t2 int) []scanPair {
	t.Helper()
	var out []scanPair
	if err := w.TimedSegmentScan(t1, t2, func(key string, e index.Entry) bool {
		out = append(out, scanPair{key, e})
		return true
	}); err != nil {
		t.Fatal(err)
	}
	return out
}

// TestParallelPathsMatchSequential is the engine's core property: on
// randomly-evolved waves of every scheme and technique, the parallel
// probe, the batched multi-probe, and the merged parallel scan return
// results identical to the sequential paths.
func TestParallelPathsMatchSequential(t *testing.T) {
	keys := []string{"alpha", "beta", "gamma", "delta", "epsilon", "zeta", "eta", "theta", "missing"}
	for _, kind := range []Kind{KindDEL, KindREINDEX, KindREINDEXPlus, KindREINDEXPlusPlus, KindWATAStar, KindRATAStar} {
		for _, tech := range []Technique{InPlace, SimpleShadow, PackedShadow} {
			t.Run(fmt.Sprintf("%s/%s", kind, tech), func(t *testing.T) {
				const w, n = 9, 3
				s, _, _ := newDataScheme(t, kind, w, n, tech, index.HashDir)
				defer s.Close()
				if err := s.Start(); err != nil {
					t.Fatal(err)
				}
				rng := rand.New(rand.NewSource(42))
				for d := w + 1; d <= 4*w; d++ {
					if err := s.Transition(d); err != nil {
						t.Fatal(err)
					}
					if d%3 != 0 {
						continue
					}
					lo := s.WindowStart() + rng.Intn(w)
					hi := lo + rng.Intn(w)
					wave := s.Wave()
					for _, key := range keys {
						seq, err := wave.TimedIndexProbe(key, lo, hi)
						if err != nil {
							t.Fatal(err)
						}
						par, err := wave.ParallelTimedIndexProbe(key, lo, hi)
						if err != nil {
							t.Fatal(err)
						}
						if !reflect.DeepEqual(seq, par) {
							t.Fatalf("day %d key %q [%d,%d]: parallel probe %v, sequential %v", d, key, lo, hi, par, seq)
						}
					}
					multi, err := wave.MultiProbe(keys, lo, hi)
					if err != nil {
						t.Fatal(err)
					}
					for _, key := range keys {
						seq, err := wave.TimedIndexProbe(key, lo, hi)
						if err != nil {
							t.Fatal(err)
						}
						got := multi[key]
						if len(seq) == 0 {
							if _, present := multi[key]; present {
								t.Fatalf("day %d key %q: MultiProbe has empty-result key", d, key)
							}
							continue
						}
						if !reflect.DeepEqual(seq, got) {
							t.Fatalf("day %d key %q [%d,%d]: MultiProbe %v, sequential %v", d, key, lo, hi, got, seq)
						}
					}
					// The merged parallel scan must match a single-engine
					// sequential pass entry for entry.
					par := collectScan(t, wave, lo, hi)
					wave.SetParallelism(1)
					seq := collectScan(t, wave, lo, hi)
					wave.SetParallelism(n)
					if !reflect.DeepEqual(seq, par) {
						t.Fatalf("day %d [%d,%d]: parallel scan diverged (%d vs %d pairs)", d, lo, hi, len(par), len(seq))
					}
				}
			})
		}
	}
}

// TestScanEarlyStop checks the callback-returns-false contract on the
// merged parallel scan: visiting stops, no error is reported, and the
// producer goroutines shut down (verified by the -race harness and by a
// later full scan still working).
func TestScanEarlyStop(t *testing.T) {
	s, _, _ := newDataScheme(t, KindDEL, 12, 4, SimpleShadow, index.HashDir)
	defer s.Close()
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	wave := s.Wave()
	total := len(collectScan(t, wave, 1, 1<<29))
	if total < 10 {
		t.Fatalf("scan too small to test early stop: %d entries", total)
	}
	for _, stopAt := range []int{1, 2, total / 2} {
		seen := 0
		if err := wave.TimedSegmentScan(1, 1<<29, func(string, index.Entry) bool {
			seen++
			return seen < stopAt
		}); err != nil {
			t.Fatal(err)
		}
		if seen != stopAt {
			t.Errorf("stop at %d: callback ran %d times", stopAt, seen)
		}
	}
	if again := len(collectScan(t, wave, 1, 1<<29)); again != total {
		t.Errorf("scan after early stops saw %d entries, want %d", again, total)
	}
}

// TestScanKeyOrder checks the streaming merge's output contract: keys
// ascend, and within a key entries are grouped by wave slot in slot
// order (each slot's run internally (day, record)-sorted).
func TestScanKeyOrder(t *testing.T) {
	s, _, _ := newDataScheme(t, KindWATAStar, 10, 4, PackedShadow, index.HashDir)
	defer s.Close()
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	for d := 11; d <= 25; d++ {
		if err := s.Transition(d); err != nil {
			t.Fatal(err)
		}
	}
	pairs := collectScan(t, s.Wave(), 1, 1<<29)
	if len(pairs) == 0 {
		t.Fatal("empty scan")
	}
	for i := 1; i < len(pairs); i++ {
		if pairs[i].key < pairs[i-1].key {
			t.Fatalf("key order violated at %d: %q after %q", i, pairs[i].key, pairs[i-1].key)
		}
	}
}

// TestScansDuringTransitions runs merged parallel scans concurrently
// with shadow transitions: scans must never fail (retirement defers
// constituent drops past in-flight snapshots) and every observed day
// must be complete. Run with -race.
func TestScansDuringTransitions(t *testing.T) {
	for _, kind := range []Kind{KindDEL, KindWATAStar} {
		t.Run(kind.String(), func(t *testing.T) {
			const w, n = 8, 4
			s, src, _ := newDataScheme(t, kind, w, n, PackedShadow, index.HashDir)
			defer s.Close()
			if err := s.Start(); err != nil {
				t.Fatal(err)
			}
			var stop atomic.Bool
			var fail atomic.Value
			var wg sync.WaitGroup
			for q := 0; q < 3; q++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for !stop.Load() {
						perDay := map[int]int{}
						err := s.Wave().TimedSegmentScan(1, 1<<29, func(_ string, e index.Entry) bool {
							perDay[int(e.Day)]++
							return true
						})
						if err != nil {
							fail.Store(fmt.Errorf("scan: %w", err))
							return
						}
						for d, c := range perDay {
							b, err := src.Day(d)
							if err != nil {
								continue
							}
							if c != len(b.Postings) {
								fail.Store(fmt.Errorf("day %d: saw %d entries, want %d (torn scan)", d, c, len(b.Postings)))
								return
							}
						}
					}
				}()
			}
			for d := w + 1; d <= 6*w; d++ {
				if err := s.Transition(d); err != nil {
					t.Fatalf("Transition(%d): %v", d, err)
				}
			}
			stop.Store(true)
			wg.Wait()
			if f := fail.Load(); f != nil {
				t.Fatal(f)
			}
		})
	}
}

// TestRetireDefersBehindReaders pins a query snapshot, retires a
// constituent, and checks the drop happens only after the last reader
// ends.
func TestRetireDefersBehindReaders(t *testing.T) {
	s, _, _ := newDataScheme(t, KindDEL, 8, 4, SimpleShadow, index.HashDir)
	defer s.Close()
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	wave := s.Wave()
	victim := wave.Get(0).(Searcher)

	gate := make(chan struct{})
	entered := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		first := true
		wave.TimedSegmentScan(1, 1<<29, func(string, index.Entry) bool {
			if first {
				first = false
				close(entered)
				<-gate
			}
			return true
		})
	}()
	<-entered
	// Replace slot 0 while the scan holds a snapshot: the old index must
	// stay readable until the scan finishes.
	repl, err := wave.Get(1).Clone()
	if err != nil {
		t.Fatal(err)
	}
	if err := wave.SetRetire(0, repl); err != nil {
		t.Fatal(err)
	}
	if _, err := victim.Probe("alpha", 1, 1<<29); err != nil {
		t.Fatalf("retired constituent unreadable under a live reader: %v", err)
	}
	close(gate)
	wg.Wait()
	// The next retirement-path call on the maintenance side drains it.
	if err := wave.DrainRetired(); err != nil {
		t.Fatal(err)
	}
	if _, err := victim.Probe("alpha", 1, 1<<29); err == nil {
		t.Error("deferred drop never happened: retired constituent still readable")
	}
}
