package core

// WATAStar is WATA* (§3.3, Fig. 16), the "wait and throw away" scheme:
// new days are appended to the most recently started constituent, and an
// index is thrown away in bulk only once every day in it has expired. No
// deletion code is needed and daily work is minimal, but the window is
// soft: up to ceil((W-1)/(n-1)) - 1 expired days remain queryable.
// Theorems 1-2 show WATA* is optimal on the max-length measure, and
// Theorem 3 shows it is 2-competitive on index size.
type WATAStar struct {
	*base
	zs   []int // Z: days indexed per constituent (incl. expired)
	last int   // most recently (re)started constituent
}

// NewWATAStar returns a WATA* scheme. WATA requires n >= 2 (§3.3).
func NewWATAStar(cfg Config, bk Backend) (*WATAStar, error) {
	b, err := newBase(cfg, bk, true)
	if err != nil {
		return nil, err
	}
	return &WATAStar{base: b}, nil
}

// Name implements Scheme.
func (s *WATAStar) Name() string { return "WATA*" }

// HardWindow implements Scheme.
func (s *WATAStar) HardWindow() bool { return false }

// TempSizeBytes implements Scheme.
func (s *WATAStar) TempSizeBytes() int64 { return 0 }

// startWATA builds the Fig. 16 initial wave: the first W-1 days are split
// across constituents 1..n-1 (first (W-1) mod (n-1) clusters one day
// larger) and day W alone seeds constituent n.
func (s *WATAStar) startWATA() error {
	if err := s.checkStart(); err != nil {
		return err
	}
	s.cfg.Observer.BeginTransition(0)
	n := s.cfg.N
	s.zs = make([]int, n)
	lastDay := s.cfg.StartDay + s.cfg.W - 1
	clusters := append(splitDays(s.cfg.StartDay, s.cfg.W-1, n-1), []int{lastDay})
	cs, err := s.buildClusters(clusters)
	if err != nil {
		return err
	}
	for i, c := range cs {
		s.wave.Set(i, c)
		s.zs[i] = len(clusters[i])
	}
	s.last = n - 1
	s.started = true
	s.lastDay = lastDay
	return nil
}

// Start implements Scheme.
func (s *WATAStar) Start() error { return s.startWATA() }

// sumOther returns the days indexed outside slot j. When it reaches W-1,
// every day of slot j has expired and the index can be thrown away.
func (s *WATAStar) sumOther(j int) int {
	sum := 0
	for i, z := range s.zs {
		if i != j {
			sum += z
		}
	}
	return sum
}

// Transition implements Scheme.
func (s *WATAStar) Transition(newDay int) error {
	if err := s.checkTransition(newDay); err != nil {
		return err
	}
	s.cfg.Observer.BeginTransition(newDay)
	if err := s.crash(CPBegin); err != nil {
		return err
	}
	expired := newDay - s.cfg.W
	j := s.ownerOf(expired)
	if j >= 0 && s.sumOther(j) == s.cfg.W-1 {
		// ThrowAway: slot j holds only expired days, so it can leave the
		// wave (and be retired behind any in-flight query) before the
		// replacement is built.
		if err := s.wave.SetRetire(j, nil); err != nil {
			return err
		}
		if err := s.crash(CPWataThrown); err != nil {
			s.wave.MarkBroken(j)
			return err
		}
		markPhase(s.cfg.Observer, PhaseTransition)
		fresh, err := s.bk.Build(newDay)
		if err != nil {
			s.wave.MarkBroken(j)
			return err
		}
		if err := s.crash(CPWataBuilt); err != nil {
			fresh.Drop()
			s.wave.MarkBroken(j)
			return err
		}
		s.wave.Set(j, fresh)
		s.cfg.Observer.Publish(newDay)
		s.zs[j] = 1
		s.last = j
	} else {
		// Wait: append the new day to the growing constituent.
		if err := s.transitionUpdate(s.last, nil, []int{newDay}, newDay); err != nil {
			return err
		}
		s.zs[s.last]++
	}
	s.lastDay = newDay
	return nil
}

// Close implements Scheme.
func (s *WATAStar) Close() error { return s.closeAll() }
