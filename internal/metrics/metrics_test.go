package metrics

import (
	"sync"
	"testing"
)

func TestCounterGauge(t *testing.T) {
	r := New()
	c := r.Counter("queries")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	if r.Counter("queries") != c {
		t.Fatal("same name returned a different counter")
	}
	g := r.Gauge("depth")
	g.Set(7)
	g.Add(-2)
	if got := g.Value(); got != 5 {
		t.Fatalf("gauge = %d, want 5", got)
	}
}

func TestNilSafety(t *testing.T) {
	var r *Registry
	c := r.Counter("x")
	g := r.Gauge("x")
	h := r.Histogram("x")
	c.Inc()
	c.Add(3)
	g.Set(1)
	g.Add(1)
	h.Observe(42)
	if c.Value() != 0 || g.Value() != 0 {
		t.Fatal("nil handles must read 0")
	}
	s := r.Snapshot()
	if len(s.Counters)+len(s.Gauges)+len(s.Histograms) != 0 {
		t.Fatalf("nil registry snapshot not empty: %+v", s)
	}
}

func TestHistogram(t *testing.T) {
	r := New()
	h := r.Histogram("lat")
	for _, v := range []int64{1, 2, 3, 100, 1000, 0} {
		h.Observe(v)
	}
	s := r.Snapshot().Histogram("lat")
	if s.Count != 6 {
		t.Fatalf("count = %d, want 6", s.Count)
	}
	if s.Sum != 1106 {
		t.Fatalf("sum = %d, want 1106", s.Sum)
	}
	if s.Min != 0 || s.Max != 1000 {
		t.Fatalf("min/max = %d/%d, want 0/1000", s.Min, s.Max)
	}
	if m := s.Mean(); m < 184 || m > 185 {
		t.Fatalf("mean = %v", m)
	}
	if q := s.Quantile(0); q != 0 { // observed min, exactly
		t.Fatalf("p0 = %d, want 0", q)
	}
	if q := s.Quantile(1); q != 1000 { // observed max, exactly
		t.Fatalf("p100 = %d, want 1000", q)
	}
	if q := s.Quantile(0.5); q < 3 || q > 127 {
		t.Fatalf("p50 = %d, out of plausible bucket range", q)
	}
}

func TestQuantileEdges(t *testing.T) {
	var empty HistogramSnapshot
	for _, q := range []float64{-1, 0, 0.5, 1, 2} {
		if got := empty.Quantile(q); got != 0 {
			t.Fatalf("empty Quantile(%v) = %d, want 0", q, got)
		}
	}
	var h Histogram
	h.Observe(5)
	h.Observe(900)
	s := h.snapshot()
	if got := s.Quantile(0); got != 5 {
		t.Fatalf("Quantile(0) = %d, want min 5", got)
	}
	if got := s.Quantile(-0.5); got != 5 {
		t.Fatalf("Quantile(-0.5) = %d, want min 5", got)
	}
	if got := s.Quantile(1); got != 900 {
		t.Fatalf("Quantile(1) = %d, want max 900", got)
	}
	if got := s.Quantile(1.5); got != 900 {
		t.Fatalf("Quantile(1.5) = %d, want max 900", got)
	}
	// Interior quantiles still resolve to bucket bounds, never below min
	// or above max.
	if got := s.Quantile(0.25); got < 5 || got > 900 {
		t.Fatalf("Quantile(0.25) = %d, outside [5, 900]", got)
	}
}

func TestKindConflictPanics(t *testing.T) {
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s: expected panic on cross-kind registration", name)
			}
		}()
		f()
	}
	r := New()
	r.Counter("c")
	r.Gauge("g")
	r.Histogram("h")
	mustPanic("counter->gauge", func() { r.Gauge("c") })
	mustPanic("counter->histogram", func() { r.Histogram("c") })
	mustPanic("gauge->counter", func() { r.Counter("g") })
	mustPanic("gauge->histogram", func() { r.Histogram("g") })
	mustPanic("histogram->counter", func() { r.Counter("h") })
	mustPanic("histogram->gauge", func() { r.Gauge("h") })
	// Same-kind re-registration still returns the original handle.
	if r.Counter("c") == nil || r.Gauge("g") == nil || r.Histogram("h") == nil {
		t.Fatal("same-kind re-registration broke")
	}
}

func TestHistogramEmptyAndHuge(t *testing.T) {
	var h Histogram
	s := h.snapshot()
	if s.Count != 0 || s.Quantile(0.99) != 0 || s.Mean() != 0 {
		t.Fatalf("empty histogram snapshot = %+v", s)
	}
	h.Observe(1 << 62) // beyond the last bucket bound
	s = h.snapshot()
	if s.Count != 1 || s.Max != 1<<62 {
		t.Fatalf("huge observation snapshot = %+v", s)
	}
}

func TestSnapshotSortedAndLookup(t *testing.T) {
	r := New()
	r.Counter("b").Inc()
	r.Counter("a").Add(2)
	r.Gauge("z").Set(9)
	r.Histogram("h").Observe(5)
	s := r.Snapshot()
	if len(s.Counters) != 2 || s.Counters[0].Name != "a" || s.Counters[1].Name != "b" {
		t.Fatalf("counters not sorted: %+v", s.Counters)
	}
	if s.Counter("a") != 2 || s.Counter("missing") != 0 {
		t.Fatal("snapshot counter lookup broken")
	}
	if s.Gauge("z") != 9 {
		t.Fatal("snapshot gauge lookup broken")
	}
	if s.Histogram("h").Count != 1 {
		t.Fatal("snapshot histogram lookup broken")
	}
}

// TestConcurrent exercises every handle type from many goroutines; run
// under -race this is the registry's thread-safety proof.
func TestConcurrent(t *testing.T) {
	r := New()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				r.Counter("c").Inc()
				r.Gauge("g").Set(int64(j))
				r.Histogram("h").Observe(int64(i*1000 + j))
			}
		}(i)
	}
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				_ = r.Snapshot()
			}
		}()
	}
	wg.Wait()
	s := r.Snapshot()
	if got := s.Counter("c"); got != 8000 {
		t.Fatalf("counter = %d, want 8000", got)
	}
	h := s.Histogram("h")
	if h.Count != 8000 || h.Min != 0 || h.Max != 7999 {
		t.Fatalf("histogram = count %d min %d max %d", h.Count, h.Min, h.Max)
	}
}

func TestBucketBounds(t *testing.T) {
	cases := map[int64]int{0: 0, 1: 0, 2: 1, 3: 1, 4: 2, 1023: 9, 1024: 10}
	for v, want := range cases {
		if got := bucketOf(v); got != want {
			t.Errorf("bucketOf(%d) = %d, want %d", v, got, want)
		}
	}
	if BucketBound(0) != 1 || BucketBound(1) != 3 || BucketBound(2) != 7 {
		t.Fatal("bucket bounds moved")
	}
}

// TestQuantileSingleSample checks every interior quantile of a
// one-observation histogram reports that observation exactly: with one
// sample the rank is always 1, the only bucket's bound clamps to Max,
// and nothing resolves to an empty-grid artefact like 0.
func TestQuantileSingleSample(t *testing.T) {
	var h Histogram
	h.Observe(777)
	s := h.snapshot()
	for _, q := range []float64{0, 0.5, 0.9, 0.95, 0.99, 1} {
		if got := s.Quantile(q); got != 777 {
			t.Errorf("single-sample Quantile(%v) = %d, want 777", q, got)
		}
	}
}

// TestQuantileTwoSpikes checks quantile resolution on a bimodal
// distribution: 99 fast observations and one outlier. p95 and p99 must
// stay in the fast mode's bucket (their rank lands before the spike),
// while p100 reports the outlier exactly; flipped, a 99%-outlier
// distribution must pull p95/p99 up to the slow mode without
// overshooting the observed max.
func TestQuantileTwoSpikes(t *testing.T) {
	const fast, slow = 10, 1 << 20
	var h Histogram
	for i := 0; i < 99; i++ {
		h.Observe(fast)
	}
	h.Observe(slow)
	s := h.snapshot()
	for _, q := range []float64{0.95, 0.99} {
		if got := s.Quantile(q); got < fast || got >= slow {
			t.Errorf("fast-heavy Quantile(%v) = %d, want in fast bucket [%d,%d)", q, got, fast, slow)
		}
	}
	if got := s.Quantile(1); got != slow {
		t.Errorf("fast-heavy Quantile(1) = %d, want %d", got, slow)
	}

	var h2 Histogram
	h2.Observe(fast)
	for i := 0; i < 99; i++ {
		h2.Observe(slow)
	}
	s2 := h2.snapshot()
	for _, q := range []float64{0.95, 0.99} {
		if got := s2.Quantile(q); got < slow || got > s2.Max {
			t.Errorf("slow-heavy Quantile(%v) = %d, want in [%d,%d]", q, got, slow, s2.Max)
		}
	}
	if got := s2.Quantile(0); got != fast {
		t.Errorf("slow-heavy Quantile(0) = %d, want min %d", got, fast)
	}
}
