package metrics

import "sort"

// Merge combines several snapshots into one aggregate view, as if every
// observation had landed in a single registry: counters and gauges with
// the same name are summed, histograms are merged bucket-wise (counts
// and sums add, min/max widen). It serves fleet-style deployments — a
// shard router exposing one rollup series alongside the per-shard ones.
//
// Gauges are summed because the runtime's gauges are extensive
// quantities (disk seeks, used blocks, worker counts); a mean or max
// would misreport all of them.
func Merge(snaps ...Snapshot) Snapshot {
	ctrs := map[string]int64{}
	gauges := map[string]int64{}
	hists := map[string]HistogramSnapshot{}
	for _, s := range snaps {
		for _, c := range s.Counters {
			ctrs[c.Name] += c.Value
		}
		for _, g := range s.Gauges {
			gauges[g.Name] += g.Value
		}
		for _, h := range s.Histograms {
			hists[h.Name] = mergeHist(hists[h.Name], h.HistogramSnapshot)
		}
	}
	var out Snapshot
	for name, v := range ctrs {
		out.Counters = append(out.Counters, Sample{Name: name, Value: v})
	}
	for name, v := range gauges {
		out.Gauges = append(out.Gauges, Sample{Name: name, Value: v})
	}
	for name, h := range hists {
		out.Histograms = append(out.Histograms, HistogramSample{Name: name, HistogramSnapshot: h})
	}
	sort.Slice(out.Counters, func(i, j int) bool { return out.Counters[i].Name < out.Counters[j].Name })
	sort.Slice(out.Gauges, func(i, j int) bool { return out.Gauges[i].Name < out.Gauges[j].Name })
	sort.Slice(out.Histograms, func(i, j int) bool { return out.Histograms[i].Name < out.Histograms[j].Name })
	return out
}

// mergeHist merges two histogram snapshots. Buckets share the fixed
// BucketBound grid, so merging is a join on Le.
func mergeHist(a, b HistogramSnapshot) HistogramSnapshot {
	if a.Count == 0 {
		return b
	}
	if b.Count == 0 {
		return a
	}
	out := HistogramSnapshot{
		Count: a.Count + b.Count,
		Sum:   a.Sum + b.Sum,
		Min:   min(a.Min, b.Min),
		Max:   max(a.Max, b.Max),
	}
	counts := map[int64]int64{}
	for _, bk := range a.Buckets {
		counts[bk.Le] += bk.Count
	}
	for _, bk := range b.Buckets {
		counts[bk.Le] += bk.Count
	}
	for le, n := range counts {
		out.Buckets = append(out.Buckets, Bucket{Le: le, Count: n})
	}
	sort.Slice(out.Buckets, func(i, j int) bool { return out.Buckets[i].Le < out.Buckets[j].Le })
	return out
}
