package metrics

import (
	"testing"
)

// Merge backs both the sharded router's fleet-wide METRICS and the
// server's backend+wire-registry snapshot; these tests pin down its
// edge cases so those composites stay trustworthy.

func TestMergeEmptySnapshots(t *testing.T) {
	// No inputs at all.
	if s := Merge(); len(s.Counters)+len(s.Gauges)+len(s.Histograms) != 0 {
		t.Fatalf("Merge() = %+v, want empty", s)
	}
	// An empty registry's snapshot is the identity element.
	r := New()
	r.Counter("c").Add(3)
	r.Gauge("g").Set(-2)
	r.Histogram("h").Observe(10)
	got := Merge(New().Snapshot(), r.Snapshot(), New().Snapshot())
	if got.Counter("c") != 3 || got.Gauge("g") != -2 {
		t.Fatalf("merge with empties changed values: %+v", got)
	}
	if hs := got.Histogram("h"); hs.Count != 1 || hs.Sum != 10 {
		t.Fatalf("merge with empties changed histogram: %+v", hs)
	}
	// Merging only empties stays empty, not nil-map panics.
	if s := Merge(New().Snapshot(), New().Snapshot()); len(s.Counters) != 0 {
		t.Fatalf("empty+empty = %+v", s)
	}
}

// TestMergeMismatchedHistogramBounds merges histogram snapshots whose
// bucket lists cover different Le grids (as happens when one side has
// only small observations and the other only large ones): the merge
// must union the bounds, keep per-bound counts exact, and stay sorted.
func TestMergeMismatchedHistogramBounds(t *testing.T) {
	ra, rb := New(), New()
	ra.Histogram("lat").Observe(1) // lands in the smallest buckets
	ra.Histogram("lat").Observe(2)
	rb.Histogram("lat").Observe(1 << 20) // far coarser bucket
	got := Merge(ra.Snapshot(), rb.Snapshot())
	hs := got.Histogram("lat")
	if hs.Count != 3 || hs.Sum != 3+1<<20 {
		t.Fatalf("count/sum = %d/%d, want 3/%d", hs.Count, hs.Sum, 3+1<<20)
	}
	if hs.Min != 1 || hs.Max != 1<<20 {
		t.Fatalf("min/max = %d/%d", hs.Min, hs.Max)
	}
	var total int64
	for i, b := range hs.Buckets {
		total += b.Count
		if i > 0 && hs.Buckets[i-1].Le >= b.Le {
			t.Fatalf("buckets not strictly sorted: %+v", hs.Buckets)
		}
	}
	if total != 3 {
		t.Fatalf("bucket counts sum to %d, want 3", total)
	}
	// The union contains both sides' bounds.
	les := map[int64]bool{}
	for _, b := range hs.Buckets {
		les[b.Le] = true
	}
	for _, side := range []Snapshot{ra.Snapshot(), rb.Snapshot()} {
		sh := side.Histogram("lat")
		for _, b := range sh.Buckets {
			if !les[b.Le] {
				t.Fatalf("merged histogram lost bound %d: %+v", b.Le, hs.Buckets)
			}
		}
	}
}

// TestMergeCrossKindCollision: the same name used as a counter in one
// snapshot and a gauge (or histogram) in another must not bleed across
// kinds — counters, gauges, and histograms are independent namespaces,
// unlike within one registry where reusing a name across kinds panics.
func TestMergeCrossKindCollision(t *testing.T) {
	ra, rb, rc := New(), New(), New()
	ra.Counter("x").Add(5)
	rb.Gauge("x").Set(7)
	rc.Histogram("x").Observe(11)
	got := Merge(ra.Snapshot(), rb.Snapshot(), rc.Snapshot())
	if got.Counter("x") != 5 {
		t.Errorf("counter x = %d, want 5", got.Counter("x"))
	}
	if got.Gauge("x") != 7 {
		t.Errorf("gauge x = %d, want 7", got.Gauge("x"))
	}
	if hs := got.Histogram("x"); hs.Count != 1 || hs.Sum != 11 {
		t.Errorf("histogram x = %+v, want one observation of 11", hs)
	}
}

// TestMergeSumsSameKind pins the basic accumulation semantics: same
// name, same kind → values add (counters, gauges) or pool (histograms).
func TestMergeSumsSameKind(t *testing.T) {
	ra, rb := New(), New()
	ra.Counter("reqs").Add(2)
	rb.Counter("reqs").Add(3)
	ra.Gauge("depth").Set(4)
	rb.Gauge("depth").Set(-1)
	ra.Histogram("lat").Observe(8)
	rb.Histogram("lat").Observe(8)
	got := Merge(ra.Snapshot(), rb.Snapshot())
	if got.Counter("reqs") != 5 {
		t.Errorf("counter = %d, want 5", got.Counter("reqs"))
	}
	if got.Gauge("depth") != 3 {
		t.Errorf("gauge = %d, want 3", got.Gauge("depth"))
	}
	if hs := got.Histogram("lat"); hs.Count != 2 || hs.Sum != 16 {
		t.Errorf("histogram = %+v, want count 2 sum 16", hs)
	}
}

// TestMergeCacheGauges checks the shard rollup over the caching tier's
// gauges: per-shard cache_* series are extensive quantities and must
// sum, and a shard running with caching off (no cache_* gauges in its
// snapshot at all, the bench-comparability contract) contributes
// nothing without zeroing the fleet view.
func TestMergeCacheGauges(t *testing.T) {
	ra, rb, rc := New(), New(), New()
	for name, vals := range map[string][2]int64{
		"cache_block_hits":         {100, 40},
		"cache_block_misses":       {20, 10},
		"cache_block_evictions":    {5, 0},
		"cache_result_hits":        {60, 9},
		"cache_result_misses":      {12, 3},
		"cache_result_invalidated": {7, 1},
		"cache_result_entries":     {33, 11},
		"cache_result_cost_used":   {400, 100},
	} {
		ra.Gauge(name).Set(vals[0])
		rb.Gauge(name).Set(vals[1])
	}
	// rc is a cache-off shard: it exports query counters but no cache
	// gauges whatsoever.
	rc.Counter("query_probe_total").Add(5)

	got := Merge(ra.Snapshot(), rb.Snapshot(), rc.Snapshot())
	for name, want := range map[string]int64{
		"cache_block_hits":         140,
		"cache_block_misses":       30,
		"cache_block_evictions":    5,
		"cache_result_hits":        69,
		"cache_result_misses":      15,
		"cache_result_invalidated": 8,
		"cache_result_entries":     44,
		"cache_result_cost_used":   500,
	} {
		if v := got.Gauge(name); v != want {
			t.Errorf("merged %s = %d, want %d", name, v, want)
		}
	}
	if got.Counter("query_probe_total") != 5 {
		t.Errorf("cache-off shard's counters lost in merge")
	}
}
