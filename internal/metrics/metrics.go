// Package metrics is a dependency-free instrumentation registry for the
// wave-index runtime: atomic counters, gauges, and bounded latency
// histograms, collected into named registries and exported as immutable
// snapshots. It exists because the paper's evaluation (Tables 5-12) is
// entirely about *measuring* query response, transition time, and daily
// work — the live engine must report the same measures at runtime that
// the offline cost model predicts.
//
// All metric handles are safe for concurrent use and nil-safe: methods on
// a nil *Counter, *Gauge, or *Histogram are no-ops, and a nil *Registry
// hands out nil handles. Instrumented code therefore carries no
// conditionals — it records unconditionally, and disabling observability
// is just wiring a nil registry.
package metrics

import (
	"math/bits"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing atomic counter.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n. No-op on a nil receiver.
func (c *Counter) Add(n int64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Inc increments the counter by one. No-op on a nil receiver.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count (0 on a nil receiver).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an atomic instantaneous value.
type Gauge struct {
	v atomic.Int64
}

// Set replaces the gauge's value. No-op on a nil receiver.
func (g *Gauge) Set(n int64) {
	if g != nil {
		g.v.Store(n)
	}
}

// Add moves the gauge by delta. No-op on a nil receiver.
func (g *Gauge) Add(delta int64) {
	if g != nil {
		g.v.Add(delta)
	}
}

// Value returns the gauge's value (0 on a nil receiver).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// histBuckets is the fixed bucket count of every histogram: bucket i
// holds observations v with bitlen(v) == i+1, i.e. v in [2^i, 2^(i+1)),
// bucket 0 additionally holds v <= 0. 48 doubling buckets cover
// microsecond latencies past three days, so histograms never reallocate
// and recording is one atomic add.
const histBuckets = 48

// Histogram is a bounded log-scale histogram of non-negative integer
// observations (typically microseconds or small cardinalities).
type Histogram struct {
	count  atomic.Int64
	sum    atomic.Int64
	min    atomic.Int64 // valid only when count > 0
	max    atomic.Int64
	bucket [histBuckets]atomic.Int64
}

// bucketOf maps an observation to its bucket index.
func bucketOf(v int64) int {
	if v <= 0 {
		return 0
	}
	b := bits.Len64(uint64(v)) - 1
	if b >= histBuckets {
		return histBuckets - 1
	}
	return b
}

// BucketBound returns the inclusive upper bound of bucket i
// (2^(i+1) - 1); the last bucket is unbounded and reports its lower
// bound instead.
func BucketBound(i int) int64 {
	if i >= histBuckets-1 {
		return 1 << (histBuckets - 1)
	}
	return 1<<(i+1) - 1
}

// InfBound is the bound reported by the unbounded last bucket
// (BucketBound(histBuckets-1)). Exporters that need a true upper bound
// (e.g. Prometheus text format) should render observations in a bucket
// whose Le equals InfBound under +Inf rather than as a finite le.
const InfBound = int64(1) << (histBuckets - 1)

// Observe records one observation. No-op on a nil receiver.
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	h.sum.Add(v)
	h.bucket[bucketOf(v)].Add(1)
	for {
		cur := h.min.Load()
		if h.count.Load() > 0 && cur <= v {
			break
		}
		if h.min.CompareAndSwap(cur, v) {
			break
		}
	}
	for {
		cur := h.max.Load()
		if cur >= v && h.count.Load() > 0 {
			break
		}
		if h.max.CompareAndSwap(cur, v) {
			break
		}
	}
	h.count.Add(1)
}

// HistogramSnapshot is an immutable view of a histogram.
type HistogramSnapshot struct {
	Count, Sum, Min, Max int64
	// Buckets holds the non-empty buckets in ascending bound order.
	Buckets []Bucket
}

// Bucket is one non-empty histogram bucket: Count observations with
// value <= Le (the last bucket's Le is its lower bound; see BucketBound).
type Bucket struct {
	Le    int64
	Count int64
}

// Mean returns the snapshot's average observation (0 when empty).
func (s HistogramSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return float64(s.Sum) / float64(s.Count)
}

// Quantile returns an upper bound on the q-quantile, resolved to bucket
// granularity. q is clamped to [0, 1]: q <= 0 reports the observed
// minimum and q >= 1 the observed maximum exactly. Empty histograms
// report 0 for every q.
func (s HistogramSnapshot) Quantile(q float64) int64 {
	if s.Count == 0 {
		return 0
	}
	if q <= 0 {
		return s.Min
	}
	if q >= 1 {
		return s.Max
	}
	rank := int64(q*float64(s.Count-1)) + 1
	var seen int64
	for _, b := range s.Buckets {
		seen += b.Count
		if seen >= rank {
			if b.Le > s.Max {
				return s.Max
			}
			return b.Le
		}
	}
	return s.Max
}

// snapshot captures the histogram's current state. The counters are read
// without a global lock, so a snapshot taken during concurrent Observe
// calls may be off by the in-flight observations — fine for monitoring.
func (h *Histogram) snapshot() HistogramSnapshot {
	s := HistogramSnapshot{Count: h.count.Load(), Sum: h.sum.Load()}
	if s.Count > 0 {
		s.Min, s.Max = h.min.Load(), h.max.Load()
	}
	for i := range h.bucket {
		if n := h.bucket[i].Load(); n > 0 {
			s.Buckets = append(s.Buckets, Bucket{Le: BucketBound(i), Count: n})
		}
	}
	return s
}

// Registry is a named collection of metrics. The zero value is ready to
// use; a nil *Registry hands out nil (no-op) handles.
type Registry struct {
	mu    sync.Mutex
	ctrs  map[string]*Counter
	gauge map[string]*Gauge
	hist  map[string]*Histogram
}

// New returns an empty registry.
func New() *Registry { return &Registry{} }

// checkKind panics if name is already registered as a different metric
// kind. Reusing one name across kinds would hand out two unrelated
// handles behind the same name and emit conflicting series from
// exporters, so it is a programming error, not a recoverable condition.
// Called with r.mu held.
func (r *Registry) checkKind(name, kind string) {
	var prior string
	switch {
	case kind != "counter" && r.ctrs[name] != nil:
		prior = "counter"
	case kind != "gauge" && r.gauge[name] != nil:
		prior = "gauge"
	case kind != "histogram" && r.hist[name] != nil:
		prior = "histogram"
	default:
		return
	}
	panic("metrics: " + name + " already registered as a " + prior + ", cannot re-register as a " + kind)
}

// Counter returns the named counter, creating it on first use. Returns
// nil (a no-op handle) on a nil registry. Panics if name is already
// registered as a gauge or histogram.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.checkKind(name, "counter")
	if r.ctrs == nil {
		r.ctrs = map[string]*Counter{}
	}
	c, ok := r.ctrs[name]
	if !ok {
		c = &Counter{}
		r.ctrs[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use. Returns nil
// (a no-op handle) on a nil registry. Panics if name is already
// registered as a counter or histogram.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.checkKind(name, "gauge")
	if r.gauge == nil {
		r.gauge = map[string]*Gauge{}
	}
	g, ok := r.gauge[name]
	if !ok {
		g = &Gauge{}
		r.gauge[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it on first use.
// Returns nil (a no-op handle) on a nil registry. Panics if name is
// already registered as a counter or gauge.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.checkKind(name, "histogram")
	if r.hist == nil {
		r.hist = map[string]*Histogram{}
	}
	h, ok := r.hist[name]
	if !ok {
		h = &Histogram{}
		r.hist[name] = h
	}
	return h
}

// Snapshot is a point-in-time view of a registry, with deterministic
// (sorted) name order inside each section.
type Snapshot struct {
	Counters   []Sample
	Gauges     []Sample
	Histograms []HistogramSample
}

// Sample is one named scalar value.
type Sample struct {
	Name  string
	Value int64
}

// HistogramSample is one named histogram snapshot.
type HistogramSample struct {
	Name string
	HistogramSnapshot
}

// Counter returns the named counter's value from the snapshot (0 if
// absent).
func (s Snapshot) Counter(name string) int64 {
	for _, c := range s.Counters {
		if c.Name == name {
			return c.Value
		}
	}
	return 0
}

// Gauge returns the named gauge's value from the snapshot (0 if absent).
func (s Snapshot) Gauge(name string) int64 {
	for _, g := range s.Gauges {
		if g.Name == name {
			return g.Value
		}
	}
	return 0
}

// Histogram returns the named histogram's snapshot (zero if absent).
func (s Snapshot) Histogram(name string) HistogramSnapshot {
	for _, h := range s.Histograms {
		if h.Name == name {
			return h.HistogramSnapshot
		}
	}
	return HistogramSnapshot{}
}

// Snapshot captures every metric currently registered. A nil registry
// yields a zero snapshot.
func (r *Registry) Snapshot() Snapshot {
	if r == nil {
		return Snapshot{}
	}
	r.mu.Lock()
	ctrs := make(map[string]*Counter, len(r.ctrs))
	for k, v := range r.ctrs {
		ctrs[k] = v
	}
	gauges := make(map[string]*Gauge, len(r.gauge))
	for k, v := range r.gauge {
		gauges[k] = v
	}
	hists := make(map[string]*Histogram, len(r.hist))
	for k, v := range r.hist {
		hists[k] = v
	}
	r.mu.Unlock()

	var s Snapshot
	for name, c := range ctrs {
		s.Counters = append(s.Counters, Sample{Name: name, Value: c.Value()})
	}
	for name, g := range gauges {
		s.Gauges = append(s.Gauges, Sample{Name: name, Value: g.Value()})
	}
	for name, h := range hists {
		s.Histograms = append(s.Histograms, HistogramSample{Name: name, HistogramSnapshot: h.snapshot()})
	}
	sort.Slice(s.Counters, func(i, j int) bool { return s.Counters[i].Name < s.Counters[j].Name })
	sort.Slice(s.Gauges, func(i, j int) bool { return s.Gauges[i].Name < s.Gauges[j].Name })
	sort.Slice(s.Histograms, func(i, j int) bool { return s.Histograms[i].Name < s.Histograms[j].Name })
	return s
}
