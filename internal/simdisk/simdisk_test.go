package simdisk

import (
	"bytes"
	"errors"
	"path/filepath"
	"testing"
	"time"
)

func TestAllocSequentialExtents(t *testing.T) {
	s := NewRAM(Config{})
	defer s.Close()
	a, err := s.Alloc(4)
	if err != nil {
		t.Fatalf("Alloc: %v", err)
	}
	b, err := s.Alloc(2)
	if err != nil {
		t.Fatalf("Alloc: %v", err)
	}
	if a.Start != 0 || a.Blocks != 4 {
		t.Errorf("first extent = %v, want [0+4)", a)
	}
	if b.Start != 4 || b.Blocks != 2 {
		t.Errorf("second extent = %v, want [4+2)", b)
	}
}

func TestAllocRejectsNonPositive(t *testing.T) {
	s := NewRAM(Config{})
	defer s.Close()
	for _, n := range []int64{0, -1} {
		if _, err := s.Alloc(n); !errors.Is(err, ErrInvalidExtent) {
			t.Errorf("Alloc(%d) err = %v, want ErrInvalidExtent", n, err)
		}
	}
}

func TestFreeReuseFirstFit(t *testing.T) {
	s := NewRAM(Config{})
	defer s.Close()
	a, _ := s.Alloc(4)
	if _, err := s.Alloc(2); err != nil {
		t.Fatal(err)
	}
	if err := s.Free(a); err != nil {
		t.Fatalf("Free: %v", err)
	}
	c, err := s.Alloc(3)
	if err != nil {
		t.Fatal(err)
	}
	if c.Start != 0 {
		t.Errorf("reallocation start = %d, want 0 (first fit into freed hole)", c.Start)
	}
}

func TestFreeCoalesces(t *testing.T) {
	s := NewRAM(Config{})
	defer s.Close()
	a, _ := s.Alloc(2)
	b, _ := s.Alloc(2)
	c, _ := s.Alloc(2)
	// Free in an order that requires both forward and backward coalescing.
	for _, e := range []Extent{a, c, b} {
		if err := s.Free(e); err != nil {
			t.Fatalf("Free(%v): %v", e, err)
		}
	}
	if got := s.FreeRuns(); got != 1 {
		t.Errorf("FreeRuns = %d, want 1 after coalescing", got)
	}
	if got := s.FreeBlocks(); got != 6 {
		t.Errorf("FreeBlocks = %d, want 6", got)
	}
	// A subsequent large allocation must fit contiguously in the coalesced run.
	d, err := s.Alloc(6)
	if err != nil {
		t.Fatal(err)
	}
	if d.Start != 0 {
		t.Errorf("coalesced alloc start = %d, want 0", d.Start)
	}
}

func TestDoubleFree(t *testing.T) {
	s := NewRAM(Config{})
	defer s.Close()
	a, _ := s.Alloc(1)
	if err := s.Free(a); err != nil {
		t.Fatal(err)
	}
	if err := s.Free(a); !errors.Is(err, ErrDoubleFree) {
		t.Errorf("double Free err = %v, want ErrDoubleFree", err)
	}
}

func TestFreeWrongSize(t *testing.T) {
	s := NewRAM(Config{})
	defer s.Close()
	a, _ := s.Alloc(4)
	if err := s.Free(Extent{Start: a.Start, Blocks: 2}); !errors.Is(err, ErrInvalidExtent) {
		t.Errorf("partial Free err = %v, want ErrInvalidExtent", err)
	}
}

func TestCapacityLimit(t *testing.T) {
	s := NewRAM(Config{CapacityBlocks: 8})
	defer s.Close()
	if _, err := s.Alloc(8); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Alloc(1); !errors.Is(err, ErrOutOfSpace) {
		t.Errorf("over-capacity Alloc err = %v, want ErrOutOfSpace", err)
	}
}

func TestReadWriteRoundTrip(t *testing.T) {
	s := NewRAM(Config{})
	defer s.Close()
	ext, _ := s.Alloc(2)
	want := []byte("wave indices for evolving databases")
	if err := s.WriteAt(ext, 100, want); err != nil {
		t.Fatalf("WriteAt: %v", err)
	}
	got := make([]byte, len(want))
	if err := s.ReadAt(ext, 100, got); err != nil {
		t.Fatalf("ReadAt: %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("read %q, want %q", got, want)
	}
}

func TestReadUnwrittenIsZero(t *testing.T) {
	s := NewRAM(Config{})
	defer s.Close()
	ext, _ := s.Alloc(1)
	p := []byte{1, 2, 3}
	if err := s.ReadAt(ext, 0, p); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(p, []byte{0, 0, 0}) {
		t.Errorf("unwritten read = %v, want zeros", p)
	}
}

func TestAccessBounds(t *testing.T) {
	s := NewRAM(Config{BlockSize: 64})
	defer s.Close()
	ext, _ := s.Alloc(1)
	if err := s.WriteAt(ext, 60, make([]byte, 8)); !errors.Is(err, ErrOutOfBounds) {
		t.Errorf("overflowing WriteAt err = %v, want ErrOutOfBounds", err)
	}
	if err := s.ReadAt(ext, -1, make([]byte, 1)); !errors.Is(err, ErrOutOfBounds) {
		t.Errorf("negative-offset ReadAt err = %v, want ErrOutOfBounds", err)
	}
}

func TestAccessFreedExtent(t *testing.T) {
	s := NewRAM(Config{})
	defer s.Close()
	ext, _ := s.Alloc(1)
	if err := s.Free(ext); err != nil {
		t.Fatal(err)
	}
	if err := s.WriteAt(ext, 0, []byte{1}); !errors.Is(err, ErrFreedExtent) {
		t.Errorf("WriteAt freed extent err = %v, want ErrFreedExtent", err)
	}
	if err := s.ReadAt(ext, 0, []byte{1}); !errors.Is(err, ErrFreedExtent) {
		t.Errorf("ReadAt freed extent err = %v, want ErrFreedExtent", err)
	}
}

func TestSeekAccountingSequentialVsRandom(t *testing.T) {
	s := NewRAM(Config{BlockSize: 64})
	defer s.Close()
	ext, _ := s.Alloc(4)
	p := make([]byte, 64)
	// Sequential: one seek for the first access, then none.
	for i := 0; i < 4; i++ {
		if err := s.WriteAt(ext, int64(i)*64, p); err != nil {
			t.Fatal(err)
		}
	}
	if got := s.Stats().Seeks; got != 1 {
		t.Errorf("sequential writes: seeks = %d, want 1", got)
	}
	// Random: re-reading block 0 after ending at block 4 costs a seek.
	if err := s.ReadAt(ext, 0, p); err != nil {
		t.Fatal(err)
	}
	if got := s.Stats().Seeks; got != 2 {
		t.Errorf("after random read: seeks = %d, want 2", got)
	}
}

func TestSimTimeMatchesModel(t *testing.T) {
	cfg := Config{BlockSize: 1024, SeekTime: 14 * time.Millisecond, TransferRate: 10 << 20}
	s := NewRAM(cfg)
	defer s.Close()
	ext, _ := s.Alloc(1)
	p := make([]byte, 1024)
	if err := s.WriteAt(ext, 0, p); err != nil {
		t.Fatal(err)
	}
	want := 14*time.Millisecond + time.Duration(1024*int64(time.Second)/(10<<20))
	if got := s.Stats().SimTime; got != want {
		t.Errorf("SimTime = %v, want %v", got, want)
	}
}

func TestStatsCounters(t *testing.T) {
	s := NewRAM(Config{BlockSize: 128})
	defer s.Close()
	ext, _ := s.Alloc(2)
	p := make([]byte, 200)
	if err := s.WriteAt(ext, 0, p); err != nil {
		t.Fatal(err)
	}
	if err := s.ReadAt(ext, 0, p[:100]); err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.BytesWritten != 200 || st.BytesRead != 100 {
		t.Errorf("bytes = (%d w, %d r), want (200, 100)", st.BytesWritten, st.BytesRead)
	}
	if st.BlocksWritten != 2 || st.BlocksRead != 1 {
		t.Errorf("blocks = (%d w, %d r), want (2, 1)", st.BlocksWritten, st.BlocksRead)
	}
	if st.Allocs != 1 || st.UsedBlocks != 2 || st.PeakBlocks != 2 {
		t.Errorf("occupancy = %+v", st)
	}
}

func TestPeakBlocksHighWater(t *testing.T) {
	s := NewRAM(Config{})
	defer s.Close()
	a, _ := s.Alloc(10)
	if err := s.Free(a); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Alloc(3); err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.UsedBlocks != 3 || st.PeakBlocks != 10 {
		t.Errorf("used=%d peak=%d, want 3 and 10", st.UsedBlocks, st.PeakBlocks)
	}
}

func TestResetStatsKeepsOccupancy(t *testing.T) {
	s := NewRAM(Config{})
	defer s.Close()
	ext, _ := s.Alloc(5)
	if err := s.WriteAt(ext, 0, []byte{1}); err != nil {
		t.Fatal(err)
	}
	s.ResetStats()
	st := s.Stats()
	if st.Seeks != 0 || st.BytesWritten != 0 || st.SimTime != 0 {
		t.Errorf("activity not reset: %+v", st)
	}
	if st.UsedBlocks != 5 {
		t.Errorf("UsedBlocks = %d, want 5 preserved across reset", st.UsedBlocks)
	}
}

func TestClosedStore(t *testing.T) {
	s := NewRAM(Config{})
	ext, _ := s.Alloc(1)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Alloc(1); !errors.Is(err, ErrClosed) {
		t.Errorf("Alloc after close err = %v", err)
	}
	if err := s.WriteAt(ext, 0, []byte{1}); !errors.Is(err, ErrClosed) {
		t.Errorf("WriteAt after close err = %v", err)
	}
	if err := s.Close(); !errors.Is(err, ErrClosed) {
		t.Errorf("double Close err = %v", err)
	}
}

func TestFaultInjection(t *testing.T) {
	s := NewRAM(Config{})
	defer s.Close()
	ext, _ := s.Alloc(1)
	boom := errors.New("boom")
	s.FailAfter(OpWrite, 2, boom)
	p := []byte{1}
	for i := 0; i < 2; i++ {
		if err := s.WriteAt(ext, 0, p); err != nil {
			t.Fatalf("write %d should pass: %v", i, err)
		}
	}
	if err := s.WriteAt(ext, 0, p); !errors.Is(err, boom) {
		t.Errorf("third write err = %v, want injected boom", err)
	}
	if !s.FaultFired() {
		t.Error("FaultFired = false after trigger")
	}
	// The plan fires once; later writes succeed again.
	if err := s.WriteAt(ext, 0, p); err != nil {
		t.Errorf("write after fault: %v", err)
	}
	// Clearing the plan.
	s.FailAfter(OpRead, 0, boom)
	s.FailAfter(OpRead, 0, nil)
	if err := s.ReadAt(ext, 0, p); err != nil {
		t.Errorf("read after cleared fault: %v", err)
	}
}

func TestFaultInjectionOtherOpsUnaffected(t *testing.T) {
	s := NewRAM(Config{})
	defer s.Close()
	boom := errors.New("boom")
	s.FailAfter(OpFree, 0, boom)
	ext, err := s.Alloc(1)
	if err != nil {
		t.Fatalf("Alloc with free-fault armed: %v", err)
	}
	if err := s.Free(ext); !errors.Is(err, boom) {
		t.Errorf("Free err = %v, want boom", err)
	}
}

func TestFileStoreRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "store.dat")
	s, err := NewFile(path, Config{BlockSize: 256})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	ext, err := s.Alloc(2)
	if err != nil {
		t.Fatal(err)
	}
	want := []byte("persisted bucket payload")
	if err := s.WriteAt(ext, 17, want); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(want))
	if err := s.ReadAt(ext, 17, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("file store read %q, want %q", got, want)
	}
	// Reading a never-written tail yields zeros like the RAM backend.
	tail := make([]byte, 16)
	if err := s.ReadAt(ext, 400, tail); err != nil {
		t.Fatal(err)
	}
	for _, b := range tail {
		if b != 0 {
			t.Fatalf("unwritten file region = %v, want zeros", tail)
		}
	}
}

func TestExtentHelpers(t *testing.T) {
	e := Extent{Start: 3, Blocks: 4}
	if !e.Valid() || e.End() != 7 || e.Bytes(512) != 2048 {
		t.Errorf("helpers: valid=%v end=%d bytes=%d", e.Valid(), e.End(), e.Bytes(512))
	}
	if (Extent{}).Valid() {
		t.Error("zero extent should be invalid")
	}
	if e.String() != "[3+4)" {
		t.Errorf("String = %q", e.String())
	}
	for op, want := range map[Op]string{OpAlloc: "alloc", OpFree: "free", OpRead: "read", OpWrite: "write", Op(99): "unknown"} {
		if op.String() != want {
			t.Errorf("Op(%d).String = %q, want %q", op, op.String(), want)
		}
	}
}

func TestStatsSubAndSum(t *testing.T) {
	a := Stats{Seeks: 10, BlocksRead: 100, BytesRead: 4096, BytesWritten: 512,
		Allocs: 3, Frees: 1, UsedBlocks: 40, PeakBlocks: 50, SimTime: 200 * time.Millisecond}
	b := Stats{Seeks: 4, BlocksRead: 30, BytesRead: 1024, BytesWritten: 512,
		Allocs: 2, Frees: 1, UsedBlocks: 35, PeakBlocks: 50, SimTime: 80 * time.Millisecond}
	d := a.Sub(b)
	if d.Seeks != 6 || d.BlocksRead != 70 || d.BytesRead != 3072 || d.BytesWritten != 0 {
		t.Fatalf("Sub cumulative fields wrong: %+v", d)
	}
	if d.SimTime != 120*time.Millisecond {
		t.Fatalf("Sub SimTime = %v, want 120ms", d.SimTime)
	}
	// Occupancy is a level: the delta keeps the newer snapshot's values.
	if d.UsedBlocks != 40 || d.PeakBlocks != 50 {
		t.Fatalf("Sub occupancy fields = %d/%d, want 40/50", d.UsedBlocks, d.PeakBlocks)
	}
	sum := SumStats(a, b)
	if sum.Seeks != 14 || sum.BlocksRead != 130 || sum.UsedBlocks != 75 || sum.PeakBlocks != 100 {
		t.Fatalf("SumStats wrong: %+v", sum)
	}
	if sum.SimTime != 280*time.Millisecond {
		t.Fatalf("SumStats SimTime = %v, want 280ms", sum.SimTime)
	}
	if z := SumStats(); z != (Stats{}) {
		t.Fatalf("SumStats() = %+v, want zero", z)
	}
}

// TestStatsSubAttributesWork checks the snapshot-delta idiom against a
// live store: the delta of two snapshots around a read covers exactly
// that read's charges.
func TestStatsSubAttributesWork(t *testing.T) {
	s := NewRAM(Config{BlockSize: 64})
	defer s.Close()
	ext, err := s.Alloc(4)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.WriteAt(ext, 0, make([]byte, 256)); err != nil {
		t.Fatal(err)
	}
	before := s.Stats()
	if err := s.ReadAt(ext, 0, make([]byte, 256)); err != nil {
		t.Fatal(err)
	}
	d := s.Stats().Sub(before)
	if d.BlocksRead != 4 || d.BytesRead != 256 {
		t.Fatalf("delta = %+v, want 4 blocks / 256 bytes read", d)
	}
	if d.Seeks == 0 || d.SimTime <= 0 {
		t.Fatalf("delta charged no disk time: %+v", d)
	}
	if d.BytesWritten != 0 || d.Allocs != 0 {
		t.Fatalf("delta leaked pre-snapshot work: %+v", d)
	}
}

// TestWorkLedgerAttribution drives one store through all four causes and
// checks that the ledger splits seeks, bytes, and simulated time per
// cause while the plain Stats totals stay the ledger's sum.
func TestWorkLedgerAttribution(t *testing.T) {
	s := NewRAM(Config{BlockSize: 64})
	defer s.Close()
	ext, err := s.Alloc(8)
	if err != nil {
		t.Fatal(err)
	}
	if got := s.Cause(); got != CauseQuery {
		t.Fatalf("default cause = %v, want query", got)
	}
	buf := make([]byte, 128)
	if err := s.WriteAt(ext, 0, buf); err != nil { // query write
		t.Fatal(err)
	}
	s.SetCause(CauseTransition)
	if err := s.ReadAt(ext, 0, buf); err != nil {
		t.Fatal(err)
	}
	if err := s.WriteAt(ext, 128, buf); err != nil {
		t.Fatal(err)
	}
	s.SetCause(CauseCheckpoint)
	if err := s.WriteAt(ext, 256, buf); err != nil {
		t.Fatal(err)
	}
	s.SetCause(CauseRecovery)
	if err := s.ReadAt(ext, 256, buf); err != nil {
		t.Fatal(err)
	}
	s.SetCause(CauseQuery)

	rows := s.Work()
	if len(rows) != len(Causes) {
		t.Fatalf("ledger has %d rows, want %d", len(rows), len(Causes))
	}
	byCause := map[Cause]CauseStats{}
	for _, r := range rows {
		byCause[r.Cause] = r
	}
	if r := byCause[CauseQuery]; r.BytesWritten != 128 || r.BytesRead != 0 {
		t.Fatalf("query row = %+v", r)
	}
	if r := byCause[CauseTransition]; r.BytesRead != 128 || r.BytesWritten != 128 {
		t.Fatalf("transition row = %+v", r)
	}
	if r := byCause[CauseCheckpoint]; r.BytesWritten != 128 || r.BytesRead != 0 {
		t.Fatalf("checkpoint row = %+v", r)
	}
	if r := byCause[CauseRecovery]; r.BytesRead != 128 || r.Seeks == 0 {
		t.Fatalf("recovery row = %+v", r)
	}

	st := s.Stats()
	var seeks int64
	var sim time.Duration
	for _, r := range rows {
		seeks += r.Seeks
		sim += r.SimTime
	}
	if seeks != st.Seeks || sim != st.SimTime {
		t.Fatalf("ledger sum (seeks %d, sim %v) != stats (seeks %d, sim %v)", seeks, sim, st.Seeks, st.SimTime)
	}

	sum := SumWork(rows, rows)
	if sum[CauseTransition].BytesRead != 256 {
		t.Fatalf("SumWork transition bytes read = %d, want 256", sum[CauseTransition].BytesRead)
	}

	s.ResetStats()
	for _, r := range s.Work() {
		if r.Seeks != 0 || r.BytesRead != 0 || r.BytesWritten != 0 || r.SimTime != 0 {
			t.Fatalf("ResetStats left ledger row %+v", r)
		}
	}
}
