package simdisk

import "sync/atomic"

// Op identifies a store operation for fault injection.
type Op int

// Store operations that can be targeted by fault injection.
const (
	opAlloc Op = iota
	opFree
	opRead
	opWrite
	OpAlloc = opAlloc
	OpFree  = opFree
	OpRead  = opRead
	OpWrite = opWrite
)

func (o Op) String() string {
	switch o {
	case opAlloc:
		return "alloc"
	case opFree:
		return "free"
	case opRead:
		return "read"
	case opWrite:
		return "write"
	}
	return "unknown"
}

// faultPlan injects an error into the nth matching operation. A nil plan
// never fires, so the zero-value store has no injection overhead beyond a
// nil check.
type faultPlan struct {
	op    Op
	after atomic.Int64 // number of matching ops to let through
	err   error
	fired atomic.Bool
}

func (f *faultPlan) check(op Op) error {
	if f == nil || f.fired.Load() || op != f.op {
		return nil
	}
	if f.after.Add(-1) >= 0 {
		return nil
	}
	f.fired.Store(true)
	return f.err
}

// FailAfter arranges for the store to return err on the (n+1)th subsequent
// operation of the given kind. It replaces any previous plan. Passing a nil
// err clears the plan.
func (s *Store) FailAfter(op Op, n int, err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err == nil {
		s.fault = nil
		return
	}
	fp := &faultPlan{op: op, err: err}
	fp.after.Store(int64(n))
	s.fault = fp
}

// FaultFired reports whether the injected fault has triggered.
func (s *Store) FaultFired() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.fault != nil && s.fault.fired.Load()
}
