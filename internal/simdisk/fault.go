package simdisk

import (
	"math/rand"
	"sync"
	"sync/atomic"
)

// Op identifies a store operation for fault injection.
type Op int

// Store operations that can be targeted by fault injection.
const (
	opAlloc Op = iota
	opFree
	opRead
	opWrite
	opSync
	OpAlloc = opAlloc
	OpFree  = opFree
	OpRead  = opRead
	OpWrite = opWrite
	// OpSync targets durability barriers: Log.Sync on a journal.
	OpSync = opSync
)

func (o Op) String() string {
	switch o {
	case opAlloc:
		return "alloc"
	case opFree:
		return "free"
	case opRead:
		return "read"
	case opWrite:
		return "write"
	case opSync:
		return "sync"
	}
	return "unknown"
}

// Fault is one armed fault plan. The arming call returns the handle so a
// test can arm several independent plans (e.g. a read fault and a write
// fault) and ask each one separately whether and how often it fired.
type Fault struct {
	op    Op
	err   error
	seen  atomic.Int64 // matching ops observed so far
	fired atomic.Int64 // times the plan injected its error

	// mode discriminators; exactly one is active per plan.
	after    int64      // fire on the (after+1)th matching op, once
	schedule []int64    // fire at these 0-based matching-op indices
	prob     float64    // fire each matching op with this probability
	rng      *rand.Rand // seeded source for probabilistic plans
	rngMu    sync.Mutex
}

// Fired reports whether the plan injected its error at least once.
func (f *Fault) Fired() bool { return f.fired.Load() > 0 }

// Fires returns how many times the plan injected its error.
func (f *Fault) Fires() int64 { return f.fired.Load() }

// Seen returns how many matching operations the plan has observed.
func (f *Fault) Seen() int64 { return f.seen.Load() }

// check decides whether this operation trips the plan.
func (f *Fault) check(op Op) error {
	if op != f.op {
		return nil
	}
	i := f.seen.Add(1) - 1 // 0-based index of this matching op
	switch {
	case f.prob > 0:
		f.rngMu.Lock()
		hit := f.rng.Float64() < f.prob
		f.rngMu.Unlock()
		if hit {
			f.fired.Add(1)
			return f.err
		}
	case f.schedule != nil:
		for _, n := range f.schedule {
			if n == i {
				f.fired.Add(1)
				return f.err
			}
		}
	default:
		// Single-shot: fire exactly on the (after+1)th matching op.
		if i == f.after {
			f.fired.Add(1)
			return f.err
		}
	}
	return nil
}

// faultSet is a list of armed plans shared by Store and Log. The zero
// value is ready to use and a nil *faultSet never fires, so an unarmed
// store pays one nil check per operation.
type faultSet struct {
	mu    sync.Mutex
	plans []*Fault
}

func (fs *faultSet) add(f *Fault) *Fault {
	fs.mu.Lock()
	fs.plans = append(fs.plans, f)
	fs.mu.Unlock()
	return f
}

// snapshot returns the current plans without holding the lock across
// plan checks (plans use atomics internally).
func (fs *faultSet) snapshot() []*Fault {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	return fs.plans
}

// check runs the operation past every armed plan; the first plan that
// fires wins.
func (fs *faultSet) check(op Op) error {
	if fs == nil {
		return nil
	}
	for _, f := range fs.snapshot() {
		if err := f.check(op); err != nil {
			return err
		}
	}
	return nil
}

// clearOp removes every plan for the given op.
func (fs *faultSet) clearOp(op Op) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	keep := fs.plans[:0]
	for _, f := range fs.plans {
		if f.op != op {
			keep = append(keep, f)
		}
	}
	fs.plans = keep
}

func (fs *faultSet) clearAll() {
	fs.mu.Lock()
	fs.plans = nil
	fs.mu.Unlock()
}

func (fs *faultSet) anyFired() bool {
	for _, f := range fs.snapshot() {
		if f.Fired() {
			return true
		}
	}
	return false
}

// FailAfter arranges for the store to return err on the (n+1)th
// subsequent operation of the given kind, once. Plans accumulate:
// independent read and write faults can be armed concurrently. Passing a
// nil err clears every plan for the op. The returned handle reports
// whether this particular plan fired (nil when clearing).
func (s *Store) FailAfter(op Op, n int, err error) *Fault {
	if err == nil {
		s.faults.clearOp(op)
		return nil
	}
	return s.faults.add(&Fault{op: op, err: err, after: int64(n)})
}

// FailSchedule arranges for err to be injected at each of the given
// 0-based occurrence indices of op — a per-op error schedule ("fail the
// 2nd and 5th write").
func (s *Store) FailSchedule(op Op, err error, occurrences ...int64) *Fault {
	sched := append([]int64(nil), occurrences...)
	if sched == nil {
		sched = []int64{}
	}
	return s.faults.add(&Fault{op: op, err: err, schedule: sched})
}

// FailProb arranges for each operation of the given kind to fail with
// probability p, drawn from a deterministic seeded source so chaos runs
// are reproducible.
func (s *Store) FailProb(op Op, p float64, seed int64, err error) *Fault {
	return s.faults.add(&Fault{op: op, err: err, prob: p, rng: newSeededRand(seed)})
}

func newSeededRand(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed))
}

// ClearFaults removes every armed plan.
func (s *Store) ClearFaults() { s.faults.clearAll() }

// FaultFired reports whether any injected fault has triggered.
func (s *Store) FaultFired() bool { return s.faults.anyFired() }
