package simdisk

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

func newCached(t *testing.T, capBlocks int) (*Cache, *Store) {
	t.Helper()
	inner := NewRAM(Config{BlockSize: 64})
	t.Cleanup(func() { inner.Close() })
	return NewCache(inner, capBlocks), inner
}

func TestCacheReadHitSkipsDisk(t *testing.T) {
	c, inner := newCached(t, 8)
	ext, err := c.Alloc(2)
	if err != nil {
		t.Fatal(err)
	}
	want := bytes.Repeat([]byte("ab"), 64)
	if err := c.WriteAt(ext, 0, want); err != nil {
		t.Fatal(err)
	}
	p := make([]byte, len(want))
	if err := c.ReadAt(ext, 0, p); err != nil { // miss: populates
		t.Fatal(err)
	}
	before := inner.Stats()
	for i := 0; i < 5; i++ { // hits
		if err := c.ReadAt(ext, 0, p); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(p, want) {
			t.Fatal("cached read returned wrong data")
		}
	}
	after := inner.Stats()
	if after.BytesRead != before.BytesRead || after.Seeks != before.Seeks {
		t.Errorf("cache hits touched the disk: %+v -> %+v", before, after)
	}
	cs := c.CacheStats()
	if cs.Hits != 5 || cs.Misses != 1 {
		t.Errorf("cache stats = %+v, want 5 hits 1 miss", cs)
	}
}

func TestCacheWriteThrough(t *testing.T) {
	c, inner := newCached(t, 8)
	ext, _ := c.Alloc(1)
	if err := c.WriteAt(ext, 10, []byte("durable")); err != nil {
		t.Fatal(err)
	}
	// The inner store holds the bytes even if the cache is bypassed.
	p := make([]byte, 7)
	if err := inner.ReadAt(ext, 10, p); err != nil {
		t.Fatal(err)
	}
	if string(p) != "durable" {
		t.Errorf("inner store = %q", p)
	}
}

func TestCacheWriteUpdatesResidentBlocks(t *testing.T) {
	c, _ := newCached(t, 8)
	ext, _ := c.Alloc(1)
	if err := c.WriteAt(ext, 0, bytes.Repeat([]byte{1}, 64)); err != nil {
		t.Fatal(err)
	}
	p := make([]byte, 64)
	if err := c.ReadAt(ext, 0, p); err != nil { // populate cache
		t.Fatal(err)
	}
	if err := c.WriteAt(ext, 5, []byte{9, 9, 9}); err != nil {
		t.Fatal(err)
	}
	if err := c.ReadAt(ext, 0, p); err != nil { // must be a hit with fresh data
		t.Fatal(err)
	}
	if p[5] != 9 || p[6] != 9 || p[7] != 9 || p[4] != 1 {
		t.Errorf("resident block stale after write-through: %v", p[:8])
	}
}

func TestCacheEviction(t *testing.T) {
	c, inner := newCached(t, 2)
	ext, _ := c.Alloc(4)
	buf := make([]byte, 64)
	for b := int64(0); b < 4; b++ {
		if err := c.ReadAt(ext, b*64, buf); err != nil {
			t.Fatal(err)
		}
	}
	cs := c.CacheStats()
	if cs.Resident > 2 {
		t.Errorf("resident = %d, cap 2", cs.Resident)
	}
	// Oldest block evicted: re-reading block 0 hits the disk again.
	before := inner.Stats().BytesRead
	if err := c.ReadAt(ext, 0, buf); err != nil {
		t.Fatal(err)
	}
	if inner.Stats().BytesRead == before {
		t.Error("evicted block served from cache")
	}
}

func TestCacheFreeInvalidates(t *testing.T) {
	c, _ := newCached(t, 8)
	ext, _ := c.Alloc(1)
	if err := c.WriteAt(ext, 0, bytes.Repeat([]byte{7}, 64)); err != nil {
		t.Fatal(err)
	}
	p := make([]byte, 64)
	if err := c.ReadAt(ext, 0, p); err != nil {
		t.Fatal(err)
	}
	if err := c.Free(ext); err != nil {
		t.Fatal(err)
	}
	// After free + realloc of the same blocks, the cache must agree with
	// the inner store byte for byte (reallocated extents have unspecified
	// contents, like real disks, but the cache must not diverge). Write
	// through the *inner* store so a stale cached page would be exposed.
	ext2, _ := c.Alloc(1)
	if ext2.Start != ext.Start {
		t.Fatalf("allocator did not reuse the freed extent")
	}
	if err := innerOf(t, c).WriteAt(ext2, 0, bytes.Repeat([]byte{3}, 64)); err != nil {
		t.Fatal(err)
	}
	if err := c.ReadAt(ext2, 0, p); err != nil {
		t.Fatal(err)
	}
	for _, b := range p {
		if b != 3 {
			t.Fatalf("stale cache bytes after free: %v", p[:8])
		}
	}
}

// innerOf returns the cache's inner store.
func innerOf(t *testing.T, c *Cache) BlockStore {
	t.Helper()
	return c.inner
}

// TestQuickCacheTransparency checks the cached store is observationally
// identical to the raw store under random operation sequences.
func TestQuickCacheTransparency(t *testing.T) {
	f := func(seed int64, capRaw uint8) bool {
		capBlocks := 1 + int(capRaw%16)
		rng := rand.New(rand.NewSource(seed))
		raw := NewRAM(Config{BlockSize: 64})
		defer raw.Close()
		cachedInner := NewRAM(Config{BlockSize: 64})
		defer cachedInner.Close()
		cached := NewCache(cachedInner, capBlocks)

		extRaw, err1 := raw.Alloc(8)
		extCached, err2 := cached.Alloc(8)
		if err1 != nil || err2 != nil {
			return false
		}
		for step := 0; step < 200; step++ {
			off := int64(rng.Intn(8 * 64))
			n := rng.Intn(8*64 - int(off))
			if rng.Intn(2) == 0 {
				p := make([]byte, n)
				rng.Read(p)
				e1 := raw.WriteAt(extRaw, off, p)
				e2 := cached.WriteAt(extCached, off, p)
				if (e1 == nil) != (e2 == nil) {
					return false
				}
			} else {
				p1 := make([]byte, n)
				p2 := make([]byte, n)
				e1 := raw.ReadAt(extRaw, off, p1)
				e2 := cached.ReadAt(extCached, off, p2)
				if (e1 == nil) != (e2 == nil) {
					return false
				}
				if !bytes.Equal(p1, p2) {
					t.Logf("divergence at step %d off=%d n=%d", step, off, n)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestCacheReducesSimTime demonstrates the cost-model effect: re-probing
// hot blocks through the cache accumulates less simulated disk time.
func TestCacheReducesSimTime(t *testing.T) {
	inner := NewRAM(Config{BlockSize: 64})
	defer inner.Close()
	c := NewCache(inner, 64)
	ext, _ := c.Alloc(4)
	p := make([]byte, 256)
	if err := c.ReadAt(ext, 0, p); err != nil {
		t.Fatal(err)
	}
	t1 := inner.Stats().SimTime
	for i := 0; i < 100; i++ {
		if err := c.ReadAt(ext, 0, p); err != nil {
			t.Fatal(err)
		}
	}
	if t2 := inner.Stats().SimTime; t2 != t1 {
		t.Errorf("sim time grew from %v to %v on pure cache hits", t1, t2)
	}
}
