// Write-ahead log support: an append-only record log with an explicit
// durability boundary. Appends land in a volatile tail; Sync moves the
// tail past the durability barrier, charging the cost model one seek plus
// the transfer (the fsync the paper-era systems would issue per
// transition). Crash discards the volatile tail, which is exactly what a
// machine crash does to an OS page cache — so tests can simulate a crash
// at any point and recovery sees only what was synced.
package simdisk

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"sync"
	"time"
)

// ErrCorruptLog reports a framing or checksum violation in the durable
// part of a log (not a torn tail, which is silently truncated).
var ErrCorruptLog = errors.New("simdisk: corrupt log record")

// MaxLogRecord bounds one record's payload, guarding recovery against
// corrupt length prefixes.
const MaxLogRecord = 1 << 26 // 64 MiB

const logHeaderSize = 8 // u32 length + u32 CRC32C

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// LogStats counts log activity.
type LogStats struct {
	Appends      int64         // records appended
	Syncs        int64         // Sync calls served
	SyncedBytes  int64         // durable bytes
	PendingBytes int64         // appended but not yet durable
	SimTime      time.Duration // simulated disk time spent on the log
}

// Log is an append-only record log with simulated fsync ordering. All
// methods are safe for concurrent use.
type Log struct {
	cfg Config

	mu     sync.Mutex
	meter  *costMeter
	faults faultSet
	synced []byte   // durable prefix
	tail   []byte   // appended, volatile until Sync
	file   *os.File // nil for a RAM log
	stats  LogStats
	closed bool
}

// NewRAMLog returns a volatile log: durability is simulated (Sync moves
// the barrier, Crash drops the tail) but nothing touches the filesystem.
func NewRAMLog(cfg Config) *Log {
	cfg = cfg.withDefaults()
	return &Log{cfg: cfg, meter: newCostMeter(cfg.SeekTime, cfg.TransferRate)}
}

// OpenFileLog opens (or creates) a file-backed log. Existing content is
// loaded as the durable prefix; a torn or corrupt tail from an earlier
// crash is truncated away on open.
func OpenFileLog(path string, cfg Config) (*Log, error) {
	cfg = cfg.withDefaults()
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, err
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		f.Close()
		return nil, err
	}
	l := &Log{cfg: cfg, meter: newCostMeter(cfg.SeekTime, cfg.TransferRate), file: f}
	// Keep only the well-formed prefix: everything after the first torn
	// record is unreachable anyway (it was never acknowledged as synced).
	good := wellFormedPrefix(raw)
	l.synced = append(l.synced, raw[:good]...)
	l.stats.SyncedBytes = int64(good)
	if good != len(raw) {
		if err := f.Truncate(int64(good)); err != nil {
			f.Close()
			return nil, err
		}
	}
	return l, nil
}

// wellFormedPrefix returns the length of the longest prefix of raw that
// is a sequence of intact records.
func wellFormedPrefix(raw []byte) int {
	off := 0
	for off+logHeaderSize <= len(raw) {
		n := binary.LittleEndian.Uint32(raw[off:])
		sum := binary.LittleEndian.Uint32(raw[off+4:])
		end := off + logHeaderSize + int(n)
		if n > MaxLogRecord || end > len(raw) {
			break
		}
		if crc32.Checksum(raw[off+logHeaderSize:end], crcTable) != sum {
			break
		}
		off = end
	}
	return off
}

// Append frames rec and adds it to the volatile tail. The record is not
// durable until the next Sync.
func (l *Log) Append(rec []byte) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	if len(rec) > MaxLogRecord {
		return fmt.Errorf("%w: record of %d bytes", ErrCorruptLog, len(rec))
	}
	if err := l.faults.check(opWrite); err != nil {
		return err
	}
	var hdr [logHeaderSize]byte
	binary.LittleEndian.PutUint32(hdr[:], uint32(len(rec)))
	binary.LittleEndian.PutUint32(hdr[4:], crc32.Checksum(rec, crcTable))
	l.tail = append(l.tail, hdr[:]...)
	l.tail = append(l.tail, rec...)
	l.stats.Appends++
	l.stats.PendingBytes = int64(len(l.tail))
	return nil
}

// Sync makes every appended record durable, charging one seek plus the
// tail's transfer time — the cost of the fsync that orders the journal
// write before the transition work it protects.
func (l *Log) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	if err := l.faults.check(opSync); err != nil {
		return err
	}
	if len(l.tail) == 0 {
		l.stats.Syncs++
		return nil
	}
	if l.file != nil {
		if _, err := l.file.WriteAt(l.tail, int64(len(l.synced))); err != nil {
			return err
		}
		if err := l.file.Sync(); err != nil {
			return err
		}
	}
	// The log lives at the end of the device: every sync repositions
	// there and streams the tail.
	l.meter.lastPos = -1
	l.meter.charge(int64(len(l.synced)), int64(len(l.tail)))
	l.synced = append(l.synced, l.tail...)
	l.tail = l.tail[:0]
	l.stats.Syncs++
	l.stats.SyncedBytes = int64(len(l.synced))
	l.stats.PendingBytes = 0
	return nil
}

// Crash simulates a machine crash: every record appended after the last
// Sync is lost. The log remains usable (it models the state recovery
// finds on restart).
func (l *Log) Crash() {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.tail = l.tail[:0]
	l.stats.PendingBytes = 0
}

// TearFinalRecord simulates a crash in the middle of the device flushing
// the last synced record: the durable image keeps only the first half of
// that record's bytes. Recovery must detect the torn record and truncate
// it. Returns false if there is no record to tear.
func (l *Log) TearFinalRecord() bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.tail = l.tail[:0]
	l.stats.PendingBytes = 0
	if len(l.synced) == 0 {
		return false
	}
	// Find the start of the last record.
	off, last := 0, 0
	for off+logHeaderSize <= len(l.synced) {
		last = off
		n := binary.LittleEndian.Uint32(l.synced[off:])
		off += logHeaderSize + int(n)
	}
	cut := last + (len(l.synced)-last)/2
	l.synced = l.synced[:cut]
	l.stats.SyncedBytes = int64(cut)
	if l.file != nil {
		l.file.Truncate(int64(cut))
	}
	return true
}

// Reset durably truncates the log to empty — the post-checkpoint
// compaction step. It is an error to reset with unsynced records pending
// (they would be silently dropped).
func (l *Log) Reset() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	if len(l.tail) > 0 {
		return fmt.Errorf("simdisk: log reset with %d unsynced bytes pending", len(l.tail))
	}
	if err := l.faults.check(opSync); err != nil {
		return err
	}
	if l.file != nil {
		if err := l.file.Truncate(0); err != nil {
			return err
		}
		if err := l.file.Sync(); err != nil {
			return err
		}
	}
	l.meter.lastPos = -1
	l.meter.charge(0, 0)
	l.synced = l.synced[:0]
	l.stats.SyncedBytes = 0
	return nil
}

// Records decodes the durable records in order. torn reports whether a
// partially-written final record was detected (and excluded) — the
// signature of a crash during a sync.
func (l *Log) Records() (recs [][]byte, torn bool, err error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	raw := l.synced
	off := 0
	for off < len(raw) {
		if off+logHeaderSize > len(raw) {
			return recs, true, nil
		}
		n := binary.LittleEndian.Uint32(raw[off:])
		sum := binary.LittleEndian.Uint32(raw[off+4:])
		end := off + logHeaderSize + int(n)
		if n > MaxLogRecord || end > len(raw) {
			return recs, true, nil
		}
		payload := raw[off+logHeaderSize : end]
		if crc32.Checksum(payload, crcTable) != sum {
			return recs, true, nil
		}
		recs = append(recs, append([]byte(nil), payload...))
		off = end
	}
	return recs, false, nil
}

// Stats returns a snapshot of the log's counters.
func (l *Log) Stats() LogStats {
	l.mu.Lock()
	defer l.mu.Unlock()
	st := l.stats
	st.SimTime = time.Duration(l.meter.simNanos)
	return st
}

// FailAfter arms a one-shot fault on the log (OpWrite targets Append,
// OpSync targets Sync/Reset); nil err clears the op's plans.
func (l *Log) FailAfter(op Op, n int, err error) *Fault {
	if err == nil {
		l.faults.clearOp(op)
		return nil
	}
	return l.faults.add(&Fault{op: op, err: err, after: int64(n)})
}

// FailProb arms a seeded probabilistic fault on the log.
func (l *Log) FailProb(op Op, p float64, seed int64, err error) *Fault {
	return l.faults.add(&Fault{op: op, err: err, prob: p, rng: newSeededRand(seed)})
}

// ClearFaults removes every armed plan on the log.
func (l *Log) ClearFaults() { l.faults.clearAll() }

// Close releases the log's resources. A file-backed log keeps its
// durable content on disk.
func (l *Log) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	l.closed = true
	if l.file != nil {
		return l.file.Close()
	}
	return nil
}
