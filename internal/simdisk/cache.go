package simdisk

import (
	"container/list"
	"sync"
	"time"
)

// Cache wraps a BlockStore with a write-through LRU block cache. Reads
// served entirely from memory bypass the inner store and therefore cost
// no simulated disk time — modelling the memory caching the paper credits
// for the efficiency of batched daily updates (§2.1). Writes go to both
// the cache and the store, so the store remains authoritative.
type Cache struct {
	inner BlockStore

	// Cost parameters mirrored from the inner store (or the package
	// defaults): a hit's saved simulated time is priced with the same
	// model the store would have charged — one seek plus the transfer.
	seekTime time.Duration
	rate     int64

	mu         sync.Mutex
	cap        int
	pages      map[int64]*list.Element // absolute block number -> lru element
	lru        *list.List              // front = most recent; value = *cachePage
	hits       int64
	misses     int64
	evictions  int64
	savedSeeks int64
	savedNanos int64
}

type cachePage struct {
	block int64
	data  []byte
}

// NewCache wraps inner with an LRU cache of capBlocks blocks
// (minimum 1).
func NewCache(inner BlockStore, capBlocks int) *Cache {
	if capBlocks < 1 {
		capBlocks = 1
	}
	c := &Cache{
		inner:    inner,
		seekTime: DefaultSeekTime,
		rate:     DefaultTransferBytes,
		cap:      capBlocks,
		pages:    make(map[int64]*list.Element),
		lru:      list.New(),
	}
	if cp, ok := inner.(interface{ CostParams() (time.Duration, int64) }); ok {
		c.seekTime, c.rate = cp.CostParams()
	}
	return c
}

// CacheStats reports cache effectiveness. SavedSeeks/SavedSimTime price
// the all-resident reads with the store's own cost model (one seek plus
// the transfer each would have cost cold) — an upper bound, since some
// cold reads would have been sequential with their predecessor.
type CacheStats struct {
	Hits         int64
	Misses       int64
	Evictions    int64
	Resident     int
	SavedSeeks   int64
	SavedSimTime time.Duration
}

// CacheStats returns hit/miss/eviction counters, resident block count,
// and the simulated cost the hits avoided.
func (c *Cache) CacheStats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{
		Hits:         c.hits,
		Misses:       c.misses,
		Evictions:    c.evictions,
		Resident:     len(c.pages),
		SavedSeeks:   c.savedSeeks,
		SavedSimTime: time.Duration(c.savedNanos),
	}
}

// CostParams returns the cache's cost-model parameters (those of the
// inner store), so stacked caches price savings identically.
func (c *Cache) CostParams() (time.Duration, int64) { return c.seekTime, c.rate }

// BlockSize implements BlockStore.
func (c *Cache) BlockSize() int { return c.inner.BlockSize() }

// Alloc implements BlockStore.
func (c *Cache) Alloc(blocks int64) (Extent, error) { return c.inner.Alloc(blocks) }

// Free implements BlockStore, invalidating cached blocks of the extent.
func (c *Cache) Free(ext Extent) error {
	if err := c.inner.Free(ext); err != nil {
		return err
	}
	c.mu.Lock()
	for b := ext.Start; b < ext.End(); b++ {
		if el, ok := c.pages[b]; ok {
			c.lru.Remove(el)
			delete(c.pages, b)
		}
	}
	c.mu.Unlock()
	return nil
}

// Stats implements BlockStore (the inner store's counters: cache hits do
// not appear as disk activity).
func (c *Cache) Stats() Stats { return c.inner.Stats() }

// ResetStats implements BlockStore.
func (c *Cache) ResetStats() { c.inner.ResetStats() }

// Close implements BlockStore.
func (c *Cache) Close() error {
	c.mu.Lock()
	c.pages = make(map[int64]*list.Element)
	c.lru.Init()
	c.mu.Unlock()
	return c.inner.Close()
}

// touch marks a page most-recently-used.
func (c *Cache) touch(el *list.Element) { c.lru.MoveToFront(el) }

// install caches data for block, evicting the LRU page if full.
// Caller holds c.mu.
func (c *Cache) install(block int64, data []byte) {
	if el, ok := c.pages[block]; ok {
		copy(el.Value.(*cachePage).data, data)
		c.touch(el)
		return
	}
	for len(c.pages) >= c.cap {
		tail := c.lru.Back()
		if tail == nil {
			break
		}
		c.lru.Remove(tail)
		delete(c.pages, tail.Value.(*cachePage).block)
		c.evictions++
	}
	page := &cachePage{block: block, data: append([]byte(nil), data...)}
	c.pages[block] = c.lru.PushFront(page)
}

// blockRange returns the absolute block span covering [abs, abs+n).
func (c *Cache) blockRange(abs, n int64) (first, last int64) {
	bs := int64(c.BlockSize())
	return abs / bs, (abs + n - 1) / bs
}

// ReadAt implements BlockStore: a read whose blocks are all resident is
// served from memory; otherwise the whole range is read from the inner
// store (one sequential transfer) and cached.
func (c *Cache) ReadAt(ext Extent, off int64, p []byte) error {
	if len(p) == 0 {
		return c.inner.ReadAt(ext, off, p)
	}
	bs := int64(c.BlockSize())
	abs := ext.Start*bs + off
	first, last := c.blockRange(abs, int64(len(p)))

	c.mu.Lock()
	allHit := true
	for b := first; b <= last; b++ {
		if _, ok := c.pages[b]; !ok {
			allHit = false
			break
		}
	}
	if allHit {
		for b := first; b <= last; b++ {
			el := c.pages[b]
			c.touch(el)
			data := el.Value.(*cachePage).data
			// Intersect block b with [abs, abs+len(p)).
			bStart := b * bs
			from := max64(abs, bStart)
			to := min64(abs+int64(len(p)), bStart+bs)
			copy(p[from-abs:to-abs], data[from-bStart:to-bStart])
		}
		c.hits++
		c.savedSeeks++
		saved := int64(c.seekTime)
		if c.rate > 0 {
			saved += int64(len(p)) * int64(time.Second) / c.rate
		}
		c.savedNanos += saved
		c.mu.Unlock()
		return nil
	}
	c.misses++
	c.mu.Unlock()

	// Miss: read the full covering block range from the inner store so
	// whole blocks can be cached.
	rangeOff := first*bs - ext.Start*bs
	rangeLen := (last - first + 1) * bs
	// Clamp to the extent (the final block may extend past it).
	if rangeOff+rangeLen > ext.Blocks*bs {
		rangeLen = ext.Blocks*bs - rangeOff
	}
	buf := make([]byte, rangeLen)
	if err := c.inner.ReadAt(ext, rangeOff, buf); err != nil {
		return err
	}
	c.mu.Lock()
	for b := first; b <= last; b++ {
		bOff := (b - first) * bs
		if bOff >= rangeLen {
			break
		}
		end := min64(bOff+bs, rangeLen)
		block := make([]byte, bs)
		copy(block, buf[bOff:end])
		c.install(b, block)
	}
	c.mu.Unlock()
	copy(p, buf[abs-(first*bs):])
	return nil
}

// WriteAt implements BlockStore: write-through, updating resident blocks.
func (c *Cache) WriteAt(ext Extent, off int64, p []byte) error {
	if err := c.inner.WriteAt(ext, off, p); err != nil {
		return err
	}
	if len(p) == 0 {
		return nil
	}
	bs := int64(c.BlockSize())
	abs := ext.Start*bs + off
	first, last := c.blockRange(abs, int64(len(p)))
	c.mu.Lock()
	for b := first; b <= last; b++ {
		el, ok := c.pages[b]
		if !ok {
			continue // do not pollute the cache with partial blocks
		}
		data := el.Value.(*cachePage).data
		bStart := b * bs
		from := max64(abs, bStart)
		to := min64(abs+int64(len(p)), bStart+bs)
		copy(data[from-bStart:to-bStart], p[from-abs:to-abs])
		c.touch(el)
	}
	c.mu.Unlock()
	return nil
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}
