package simdisk

import (
	"bytes"
	"errors"
	"fmt"
	"path/filepath"
	"testing"
)

func TestLogAppendSyncRecords(t *testing.T) {
	l := NewRAMLog(Config{})
	defer l.Close()
	for i := 0; i < 3; i++ {
		if err := l.Append([]byte(fmt.Sprintf("rec-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	// Nothing durable before sync.
	recs, torn, err := l.Records()
	if err != nil || torn || len(recs) != 0 {
		t.Fatalf("pre-sync Records = %d recs torn=%v err=%v", len(recs), torn, err)
	}
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	recs, torn, err = l.Records()
	if err != nil || torn {
		t.Fatalf("Records err=%v torn=%v", err, torn)
	}
	if len(recs) != 3 || !bytes.Equal(recs[1], []byte("rec-1")) {
		t.Fatalf("Records = %q", recs)
	}
	st := l.Stats()
	if st.Appends != 3 || st.Syncs != 1 || st.SyncedBytes == 0 || st.PendingBytes != 0 {
		t.Errorf("stats = %+v", st)
	}
	if st.SimTime <= 0 {
		t.Errorf("sync charged no simulated time")
	}
}

func TestLogCrashDropsUnsyncedTail(t *testing.T) {
	l := NewRAMLog(Config{})
	defer l.Close()
	l.Append([]byte("durable"))
	l.Sync()
	l.Append([]byte("volatile"))
	l.Crash()
	recs, torn, _ := l.Records()
	if torn || len(recs) != 1 || string(recs[0]) != "durable" {
		t.Fatalf("after crash: recs=%q torn=%v", recs, torn)
	}
	// The log stays usable after the crash image is taken.
	l.Append([]byte("again"))
	l.Sync()
	recs, _, _ = l.Records()
	if len(recs) != 2 || string(recs[1]) != "again" {
		t.Fatalf("after resume: %q", recs)
	}
}

func TestLogTornTailDetected(t *testing.T) {
	l := NewRAMLog(Config{})
	defer l.Close()
	l.Append([]byte("first"))
	l.Append([]byte("second-record-with-some-length"))
	l.Sync()
	if !l.TearFinalRecord() {
		t.Fatal("TearFinalRecord found nothing to tear")
	}
	recs, torn, err := l.Records()
	if err != nil {
		t.Fatal(err)
	}
	if !torn {
		t.Error("torn tail not reported")
	}
	if len(recs) != 1 || string(recs[0]) != "first" {
		t.Fatalf("surviving records = %q", recs)
	}
}

func TestLogReset(t *testing.T) {
	l := NewRAMLog(Config{})
	defer l.Close()
	l.Append([]byte("old"))
	l.Sync()
	l.Append([]byte("pending"))
	if err := l.Reset(); err == nil {
		t.Fatal("Reset with pending tail should refuse")
	}
	l.Crash() // drop the tail
	if err := l.Reset(); err != nil {
		t.Fatal(err)
	}
	recs, torn, _ := l.Records()
	if len(recs) != 0 || torn {
		t.Fatalf("after reset: recs=%q torn=%v", recs, torn)
	}
}

func TestLogFaults(t *testing.T) {
	l := NewRAMLog(Config{})
	defer l.Close()
	boom := errors.New("boom")
	f := l.FailAfter(OpSync, 0, boom)
	l.Append([]byte("x"))
	if err := l.Sync(); !errors.Is(err, boom) {
		t.Fatalf("Sync err = %v, want boom", err)
	}
	if !f.Fired() {
		t.Error("sync fault not marked fired")
	}
	// The record stays in the volatile tail: a crash now loses it.
	l.Crash()
	if err := l.Sync(); err != nil {
		t.Fatalf("second sync: %v", err)
	}
	recs, _, _ := l.Records()
	if len(recs) != 0 {
		t.Fatalf("record survived a failed sync + crash: %q", recs)
	}

	wf := l.FailAfter(OpWrite, 1, boom)
	if err := l.Append([]byte("a")); err != nil {
		t.Fatal(err)
	}
	if err := l.Append([]byte("b")); !errors.Is(err, boom) {
		t.Fatalf("append err = %v, want boom", err)
	}
	if !wf.Fired() {
		t.Error("write fault not marked fired")
	}
	// The failed append must not leave a partial frame behind.
	l.Sync()
	recs, torn, _ := l.Records()
	if torn || len(recs) != 1 || string(recs[0]) != "a" {
		t.Fatalf("after failed append: recs=%q torn=%v", recs, torn)
	}
}

func TestFileLogReopen(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	l, err := OpenFileLog(path, Config{})
	if err != nil {
		t.Fatal(err)
	}
	l.Append([]byte("one"))
	l.Append([]byte("two"))
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	l.Append([]byte("lost")) // never synced
	l.Close()

	re, err := OpenFileLog(path, Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	recs, torn, err := re.Records()
	if err != nil || torn {
		t.Fatalf("reopen: torn=%v err=%v", torn, err)
	}
	if len(recs) != 2 || string(recs[0]) != "one" || string(recs[1]) != "two" {
		t.Fatalf("reopen records = %q", recs)
	}
	// Appending after reopen continues the log.
	re.Append([]byte("three"))
	if err := re.Sync(); err != nil {
		t.Fatal(err)
	}
	recs, _, _ = re.Records()
	if len(recs) != 3 {
		t.Fatalf("after continued append: %d records", len(recs))
	}
}

func TestFileLogTruncatesTornTailOnOpen(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	l, err := OpenFileLog(path, Config{})
	if err != nil {
		t.Fatal(err)
	}
	l.Append([]byte("keep"))
	l.Append([]byte("torn-away"))
	l.Sync()
	l.TearFinalRecord()
	l.Close()

	re, err := OpenFileLog(path, Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	recs, torn, err := re.Records()
	if err != nil {
		t.Fatal(err)
	}
	if torn {
		t.Error("open should have truncated the torn tail")
	}
	if len(recs) != 1 || string(recs[0]) != "keep" {
		t.Fatalf("records = %q", recs)
	}
}

func TestConcurrentIndependentFaults(t *testing.T) {
	s := NewRAM(Config{})
	defer s.Close()
	rboom := errors.New("read boom")
	wboom := errors.New("write boom")
	rf := s.FailAfter(OpRead, 0, rboom)
	wf := s.FailAfter(OpWrite, 1, wboom)

	ext, err := s.Alloc(1)
	if err != nil {
		t.Fatal(err)
	}
	p := []byte{1}
	if err := s.WriteAt(ext, 0, p); err != nil {
		t.Fatalf("first write should pass: %v", err)
	}
	if err := s.ReadAt(ext, 0, p); !errors.Is(err, rboom) {
		t.Fatalf("read err = %v, want read boom", err)
	}
	if err := s.WriteAt(ext, 0, p); !errors.Is(err, wboom) {
		t.Fatalf("second write err = %v, want write boom", err)
	}
	if !rf.Fired() || !wf.Fired() {
		t.Errorf("fired: read=%v write=%v, want both", rf.Fired(), wf.Fired())
	}
	if rf.Fires() != 1 || wf.Fires() != 1 {
		t.Errorf("fires: read=%d write=%d", rf.Fires(), wf.Fires())
	}
}

func TestFailSchedule(t *testing.T) {
	s := NewRAM(Config{})
	defer s.Close()
	boom := errors.New("scheduled boom")
	f := s.FailSchedule(OpWrite, boom, 1, 3)
	ext, _ := s.Alloc(1)
	p := []byte{1}
	var got []int
	for i := 0; i < 5; i++ {
		if err := s.WriteAt(ext, 0, p); errors.Is(err, boom) {
			got = append(got, i)
		} else if err != nil {
			t.Fatal(err)
		}
	}
	if len(got) != 2 || got[0] != 1 || got[1] != 3 {
		t.Fatalf("schedule fired at %v, want [1 3]", got)
	}
	if f.Fires() != 2 {
		t.Errorf("Fires = %d, want 2", f.Fires())
	}
}

func TestFailProbDeterministic(t *testing.T) {
	boom := errors.New("prob boom")
	run := func(seed int64) []int {
		s := NewRAM(Config{})
		defer s.Close()
		s.FailProb(OpWrite, 0.3, seed, boom)
		ext, _ := s.Alloc(1)
		p := []byte{1}
		var hits []int
		for i := 0; i < 50; i++ {
			if err := s.WriteAt(ext, 0, p); errors.Is(err, boom) {
				hits = append(hits, i)
			}
		}
		return hits
	}
	a, b := run(42), run(42)
	if len(a) == 0 {
		t.Fatal("probabilistic fault never fired in 50 ops at p=0.3")
	}
	if fmt.Sprint(a) != fmt.Sprint(b) {
		t.Fatalf("same seed, different fault sequence: %v vs %v", a, b)
	}
	if c := run(43); fmt.Sprint(a) == fmt.Sprint(c) {
		t.Fatalf("different seeds produced identical sequences: %v", a)
	}
}
