package simdisk

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// TestQuickAllocatorInvariants drives the allocator with random
// alloc/free sequences and checks structural invariants after every step:
// live extents never overlap, the free list is sorted and coalesced, and
// used-block accounting matches the live set.
func TestQuickAllocatorInvariants(t *testing.T) {
	f := func(seed int64, opsRaw []byte) bool {
		rng := rand.New(rand.NewSource(seed))
		s := NewRAM(Config{})
		defer s.Close()
		var live []Extent
		for _, b := range opsRaw {
			if b%3 != 0 && len(live) > 0 { // free
				i := rng.Intn(len(live))
				if err := s.Free(live[i]); err != nil {
					t.Logf("Free(%v): %v", live[i], err)
					return false
				}
				live = append(live[:i], live[i+1:]...)
			} else { // alloc
				n := int64(b%17) + 1
				ext, err := s.Alloc(n)
				if err != nil {
					t.Logf("Alloc(%d): %v", n, err)
					return false
				}
				live = append(live, ext)
			}
			if !checkInvariants(t, s, live) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func checkInvariants(t *testing.T, s *Store, live []Extent) bool {
	t.Helper()
	// Live extents must be pairwise disjoint.
	var total int64
	for i, a := range live {
		total += a.Blocks
		for _, b := range live[i+1:] {
			if a.Start < b.End() && b.Start < a.End() {
				t.Logf("overlap: %v and %v", a, b)
				return false
			}
		}
	}
	st := s.Stats()
	if st.UsedBlocks != total {
		t.Logf("UsedBlocks = %d, want %d", st.UsedBlocks, total)
		return false
	}
	if st.PeakBlocks < st.UsedBlocks {
		t.Logf("PeakBlocks %d < UsedBlocks %d", st.PeakBlocks, st.UsedBlocks)
		return false
	}
	// Free list sorted, coalesced, disjoint from live extents.
	s.mu.Lock()
	free := append([]Extent(nil), s.alloc.free...)
	s.mu.Unlock()
	for i := 1; i < len(free); i++ {
		if free[i-1].End() >= free[i].Start {
			t.Logf("free list not sorted/coalesced: %v then %v", free[i-1], free[i])
			return false
		}
	}
	for _, f := range free {
		for _, l := range live {
			if f.Start < l.End() && l.Start < f.End() {
				t.Logf("free run %v overlaps live %v", f, l)
				return false
			}
		}
	}
	return true
}

// TestQuickReadBackWrites checks that for random disjoint writes within an
// extent, reads observe the last write to each region.
func TestQuickReadBackWrites(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s := NewRAM(Config{BlockSize: 128})
		defer s.Close()
		ext, err := s.Alloc(8)
		if err != nil {
			return false
		}
		shadow := make([]byte, 8*128)
		for i := 0; i < 50; i++ {
			off := int64(rng.Intn(len(shadow)))
			n := rng.Intn(len(shadow) - int(off))
			p := make([]byte, n)
			rng.Read(p)
			if err := s.WriteAt(ext, off, p); err != nil {
				return false
			}
			copy(shadow[off:], p)
		}
		got := make([]byte, len(shadow))
		if err := s.ReadAt(ext, 0, got); err != nil {
			return false
		}
		for i := range got {
			if got[i] != shadow[i] {
				t.Logf("byte %d = %d, want %d", i, got[i], shadow[i])
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
