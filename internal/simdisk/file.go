package simdisk

import (
	"fmt"
	"os"
)

// fileBackend stores bytes in an operating-system file. It gives the
// examples a persistent store while keeping the same cost accounting as
// the RAM backend (the simulated cost model stays authoritative so results
// are reproducible regardless of the host's real disk).
type fileBackend struct {
	f *os.File
}

func (b *fileBackend) writeAt(off int64, p []byte) error {
	_, err := b.f.WriteAt(p, off)
	return err
}

func (b *fileBackend) readAt(off int64, p []byte) error {
	n, err := b.f.ReadAt(p, off)
	if n == len(p) {
		return nil
	}
	if err != nil && n < len(p) {
		// Reads past the file end return zero bytes, matching the RAM
		// backend's behaviour for never-written regions.
		for i := n; i < len(p); i++ {
			p[i] = 0
		}
	}
	return nil
}

func (b *fileBackend) close() error { return b.f.Close() }

// NewFile returns a store backed by the file at path. The file is created
// if it does not exist and truncated if it does: the allocator state is not
// persisted, so a fresh store must start from empty contents.
func NewFile(path string, cfg Config) (*Store, error) {
	cfg = cfg.withDefaults()
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, fmt.Errorf("simdisk: open backing file: %w", err)
	}
	return &Store{
		cfg:   cfg,
		alloc: newAllocator(cfg.CapacityBlocks),
		meter: newCostMeter(cfg.SeekTime, cfg.TransferRate),
		data:  &fileBackend{f: f},
	}, nil
}
