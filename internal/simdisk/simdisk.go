// Package simdisk provides the storage substrate used by the wave-index
// implementation: a block-addressed store with an extent allocator and an
// explicit cost model (seeks and transfer time) that mirrors the disk
// parameters used in the paper's evaluation (seek = 14 ms, Trans = 10 MB/s).
//
// The paper's analytic model charges one seek per random access plus
// size/Trans for the transfer. The store reproduces that: any read or write
// that does not continue at the position where the previous operation ended
// is charged a seek; every operation is charged transfer time proportional
// to the bytes moved. SimTime reports the accumulated simulated disk time,
// which the experiment harness converts into the paper's "work" measure.
//
// Two backends are provided: a RAM-backed store (deterministic, used by the
// test suite and benchmarks) and a file-backed store (used by the examples
// that persist indexes across runs). Both implement BlockStore.
package simdisk

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"
)

// DefaultBlockSize is the block size used when a Config leaves BlockSize 0.
const DefaultBlockSize = 4096

// Default disk parameters, matching Table 12 of the paper.
const (
	DefaultSeekTime      = 14 * time.Millisecond
	DefaultTransferBytes = 10 << 20 // 10 MB/s
)

// Common errors returned by block stores.
var (
	ErrOutOfSpace    = errors.New("simdisk: out of space")
	ErrFreedExtent   = errors.New("simdisk: extent not allocated")
	ErrOutOfBounds   = errors.New("simdisk: access outside extent")
	ErrClosed        = errors.New("simdisk: store is closed")
	ErrDoubleFree    = errors.New("simdisk: extent already freed")
	ErrInvalidExtent = errors.New("simdisk: invalid extent")
)

// Extent identifies a contiguous run of blocks on the store.
type Extent struct {
	Start  int64 // first block number
	Blocks int64 // number of blocks
}

// Valid reports whether the extent describes a non-empty block run.
func (e Extent) Valid() bool { return e.Blocks > 0 && e.Start >= 0 }

// End returns the first block after the extent.
func (e Extent) End() int64 { return e.Start + e.Blocks }

// Bytes returns the extent's capacity in bytes for the given block size.
func (e Extent) Bytes(blockSize int) int64 { return e.Blocks * int64(blockSize) }

func (e Extent) String() string {
	return fmt.Sprintf("[%d+%d)", e.Start, e.Blocks)
}

// contains reports whether off..off+n bytes fit inside the extent.
func (e Extent) containsBytes(blockSize int, off, n int64) bool {
	return off >= 0 && n >= 0 && off+n <= e.Blocks*int64(blockSize)
}

// BlockStore is the storage abstraction the index layer builds on.
//
// All methods are safe for concurrent use.
type BlockStore interface {
	// Alloc reserves a contiguous extent of the given number of blocks.
	Alloc(blocks int64) (Extent, error)
	// Free releases an extent returned by Alloc.
	Free(Extent) error
	// WriteAt writes p at byte offset off within the extent.
	WriteAt(ext Extent, off int64, p []byte) error
	// ReadAt fills p from byte offset off within the extent.
	ReadAt(ext Extent, off int64, p []byte) error
	// BlockSize returns the store's block size in bytes.
	BlockSize() int
	// Stats returns a snapshot of the store's counters.
	Stats() Stats
	// ResetStats zeroes the activity counters (allocation state is kept).
	ResetStats()
	// Close releases resources held by the store.
	Close() error
}

// Config parameterises a store's geometry and cost model.
type Config struct {
	// BlockSize is the block size in bytes. 0 means DefaultBlockSize.
	BlockSize int
	// SeekTime is the simulated cost of one random seek.
	// 0 means DefaultSeekTime.
	SeekTime time.Duration
	// TransferRate is the simulated transfer rate in bytes per second.
	// 0 means DefaultTransferBytes.
	TransferRate int64
	// CapacityBlocks bounds the store size. 0 means unbounded.
	CapacityBlocks int64
}

func (c Config) withDefaults() Config {
	if c.BlockSize == 0 {
		c.BlockSize = DefaultBlockSize
	}
	if c.SeekTime == 0 {
		c.SeekTime = DefaultSeekTime
	}
	if c.TransferRate == 0 {
		c.TransferRate = DefaultTransferBytes
	}
	return c
}

// Stats is a snapshot of store activity and occupancy.
type Stats struct {
	Seeks         int64         // random repositionings charged
	BlocksRead    int64         // blocks transferred store -> memory
	BlocksWritten int64         // blocks transferred memory -> store
	BytesRead     int64         // bytes transferred store -> memory
	BytesWritten  int64         // bytes transferred memory -> store
	Allocs        int64         // Alloc calls served
	Frees         int64         // Free calls served
	UsedBlocks    int64         // currently allocated blocks
	PeakBlocks    int64         // high-water mark of UsedBlocks
	SimTime       time.Duration // accumulated simulated disk time
}

// UsedBytes returns the currently allocated bytes for the given block size.
func (s Stats) UsedBytes(blockSize int) int64 { return s.UsedBlocks * int64(blockSize) }

// PeakBytes returns the peak allocated bytes for the given block size.
func (s Stats) PeakBytes(blockSize int) int64 { return s.PeakBlocks * int64(blockSize) }

// Sub returns the activity delta s - prev: cumulative fields are
// subtracted, while the occupancy fields (UsedBlocks, PeakBlocks) keep
// s's current values since they are levels, not totals. Two snapshots
// taken around a query attribute that query's disk work.
func (s Stats) Sub(prev Stats) Stats {
	return Stats{
		Seeks:         s.Seeks - prev.Seeks,
		BlocksRead:    s.BlocksRead - prev.BlocksRead,
		BlocksWritten: s.BlocksWritten - prev.BlocksWritten,
		BytesRead:     s.BytesRead - prev.BytesRead,
		BytesWritten:  s.BytesWritten - prev.BytesWritten,
		Allocs:        s.Allocs - prev.Allocs,
		Frees:         s.Frees - prev.Frees,
		UsedBlocks:    s.UsedBlocks,
		PeakBlocks:    s.PeakBlocks,
		SimTime:       s.SimTime - prev.SimTime,
	}
}

// SumStats aggregates the stats of several stores (e.g. one per wave
// disk): cumulative fields and occupancy levels add, and the peak is the
// sum of per-store peaks (an upper bound on the true combined peak).
func SumStats(stats ...Stats) Stats {
	var out Stats
	for _, s := range stats {
		out.Seeks += s.Seeks
		out.BlocksRead += s.BlocksRead
		out.BlocksWritten += s.BlocksWritten
		out.BytesRead += s.BytesRead
		out.BytesWritten += s.BytesWritten
		out.Allocs += s.Allocs
		out.Frees += s.Frees
		out.UsedBlocks += s.UsedBlocks
		out.PeakBlocks += s.PeakBlocks
		out.SimTime += s.SimTime
	}
	return out
}

// Cause labels the activity a store operation is performed on behalf
// of, splitting the paper's "total work" measure into its components:
// serving queries, running wave transitions, writing checkpoints, and
// replaying recovery. The zero value is CauseQuery, so a store that
// never hears about causes attributes everything to query work.
type Cause int

// Work-ledger causes, in ledger order.
const (
	CauseQuery Cause = iota
	CauseTransition
	CauseCheckpoint
	CauseRecovery
	numCauses
)

// Causes lists every ledger cause in stable order.
var Causes = [numCauses]Cause{CauseQuery, CauseTransition, CauseCheckpoint, CauseRecovery}

// String returns the cause's label as used in metrics and wire output.
func (c Cause) String() string {
	switch c {
	case CauseQuery:
		return "query"
	case CauseTransition:
		return "transition"
	case CauseCheckpoint:
		return "checkpoint"
	case CauseRecovery:
		return "recovery"
	}
	return fmt.Sprintf("cause(%d)", int(c))
}

// CauseStats is one row of a store's work ledger: the disk work charged
// while the store's cause was set to Cause.
type CauseStats struct {
	Cause        Cause
	Seeks        int64
	BytesRead    int64
	BytesWritten int64
	SimTime      time.Duration
}

// allocator hands out contiguous extents using a first-fit free list.
// The free list is kept sorted by start block and adjacent runs are
// coalesced on free, so a store that frees everything returns to a single
// run and later packed builds get fully contiguous space.
type allocator struct {
	free     []Extent        // sorted by Start, coalesced
	frontier int64           // first never-allocated block
	capacity int64           // 0 = unbounded
	live     map[int64]int64 // start block -> length, for validation
}

func newAllocator(capacity int64) *allocator {
	return &allocator{capacity: capacity, live: make(map[int64]int64)}
}

func (a *allocator) alloc(blocks int64) (Extent, error) {
	if blocks <= 0 {
		return Extent{}, ErrInvalidExtent
	}
	// First fit from the free list.
	for i, f := range a.free {
		if f.Blocks >= blocks {
			ext := Extent{Start: f.Start, Blocks: blocks}
			if f.Blocks == blocks {
				a.free = append(a.free[:i], a.free[i+1:]...)
			} else {
				a.free[i] = Extent{Start: f.Start + blocks, Blocks: f.Blocks - blocks}
			}
			a.live[ext.Start] = ext.Blocks
			return ext, nil
		}
	}
	// Extend the frontier.
	if a.capacity > 0 && a.frontier+blocks > a.capacity {
		return Extent{}, ErrOutOfSpace
	}
	ext := Extent{Start: a.frontier, Blocks: blocks}
	a.frontier += blocks
	a.live[ext.Start] = ext.Blocks
	return ext, nil
}

func (a *allocator) freeExtent(ext Extent) error {
	if !ext.Valid() {
		return ErrInvalidExtent
	}
	got, ok := a.live[ext.Start]
	if !ok {
		return ErrDoubleFree
	}
	if got != ext.Blocks {
		return fmt.Errorf("%w: freeing %v but allocation was %d blocks", ErrInvalidExtent, ext, got)
	}
	delete(a.live, ext.Start)
	// Insert into the sorted free list and coalesce with neighbours.
	i := sort.Search(len(a.free), func(i int) bool { return a.free[i].Start >= ext.Start })
	a.free = append(a.free, Extent{})
	copy(a.free[i+1:], a.free[i:])
	a.free[i] = ext
	// Coalesce with successor first so index i stays valid.
	if i+1 < len(a.free) && a.free[i].End() == a.free[i+1].Start {
		a.free[i].Blocks += a.free[i+1].Blocks
		a.free = append(a.free[:i+1], a.free[i+2:]...)
	}
	if i > 0 && a.free[i-1].End() == a.free[i].Start {
		a.free[i-1].Blocks += a.free[i].Blocks
		a.free = append(a.free[:i], a.free[i+1:]...)
	}
	return nil
}

// allocated reports whether the extent is currently live.
func (a *allocator) allocated(ext Extent) bool {
	got, ok := a.live[ext.Start]
	return ok && got == ext.Blocks
}

// costMeter accumulates the simulated disk time of a sequence of accesses.
type costMeter struct {
	seekTime time.Duration
	rate     int64 // bytes per second
	lastPos  int64 // byte position after the previous access, -1 = none
	simNanos int64
	seeks    int64
}

func newCostMeter(seek time.Duration, rate int64) *costMeter {
	return &costMeter{seekTime: seek, rate: rate, lastPos: -1}
}

// charge records an access of n bytes starting at absolute byte position
// pos, charging a seek unless the access is sequential with the previous
// one. It returns this access's contribution (seeks charged, simulated
// nanoseconds) so the caller can attribute it in the work ledger.
func (m *costMeter) charge(pos, n int64) (seeks, nanos int64) {
	if pos != m.lastPos {
		seeks = 1
		m.seeks++
		nanos += int64(m.seekTime)
	}
	if m.rate > 0 {
		nanos += n * int64(time.Second) / m.rate
	}
	m.simNanos += nanos
	m.lastPos = pos + n
	return seeks, nanos
}

// Store is a BlockStore with a pluggable byte backend.
type Store struct {
	cfg Config

	mu     sync.Mutex
	alloc  *allocator
	meter  *costMeter
	stats  Stats
	cause  Cause
	work   [numCauses]CauseStats
	faults faultSet
	closed bool
	data   backend
}

// backend stores raw bytes at absolute byte offsets.
type backend interface {
	writeAt(off int64, p []byte) error
	readAt(off int64, p []byte) error
	close() error
}

// NewRAM returns a RAM-backed store.
func NewRAM(cfg Config) *Store {
	cfg = cfg.withDefaults()
	return &Store{
		cfg:   cfg,
		alloc: newAllocator(cfg.CapacityBlocks),
		meter: newCostMeter(cfg.SeekTime, cfg.TransferRate),
		data:  &ramBackend{},
	}
}

// BlockSize implements BlockStore.
func (s *Store) BlockSize() int { return s.cfg.BlockSize }

// CostParams returns the store's cost-model parameters: the per-seek
// simulated time and the transfer rate in bytes per second. Wrappers
// (e.g. the block cache) use them to price avoided work consistently.
func (s *Store) CostParams() (time.Duration, int64) {
	return s.cfg.SeekTime, s.cfg.TransferRate
}

// Alloc implements BlockStore.
func (s *Store) Alloc(blocks int64) (Extent, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return Extent{}, ErrClosed
	}
	if err := s.faults.check(opAlloc); err != nil {
		return Extent{}, err
	}
	ext, err := s.alloc.alloc(blocks)
	if err != nil {
		return Extent{}, err
	}
	s.stats.Allocs++
	s.stats.UsedBlocks += blocks
	if s.stats.UsedBlocks > s.stats.PeakBlocks {
		s.stats.PeakBlocks = s.stats.UsedBlocks
	}
	return ext, nil
}

// Free implements BlockStore.
func (s *Store) Free(ext Extent) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	if err := s.faults.check(opFree); err != nil {
		return err
	}
	if err := s.alloc.freeExtent(ext); err != nil {
		return err
	}
	s.stats.Frees++
	s.stats.UsedBlocks -= ext.Blocks
	return nil
}

// WriteAt implements BlockStore.
func (s *Store) WriteAt(ext Extent, off int64, p []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	if err := s.faults.check(opWrite); err != nil {
		return err
	}
	if !s.alloc.allocated(ext) {
		return ErrFreedExtent
	}
	if !ext.containsBytes(s.cfg.BlockSize, off, int64(len(p))) {
		return ErrOutOfBounds
	}
	abs := ext.Start*int64(s.cfg.BlockSize) + off
	if err := s.data.writeAt(abs, p); err != nil {
		return err
	}
	n := int64(len(p))
	seeks, nanos := s.meter.charge(abs, n)
	s.stats.BytesWritten += n
	s.stats.BlocksWritten += (n + int64(s.cfg.BlockSize) - 1) / int64(s.cfg.BlockSize)
	w := &s.work[s.cause]
	w.Seeks += seeks
	w.BytesWritten += n
	w.SimTime += time.Duration(nanos)
	return nil
}

// ReadAt implements BlockStore.
func (s *Store) ReadAt(ext Extent, off int64, p []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	if err := s.faults.check(opRead); err != nil {
		return err
	}
	if !s.alloc.allocated(ext) {
		return ErrFreedExtent
	}
	if !ext.containsBytes(s.cfg.BlockSize, off, int64(len(p))) {
		return ErrOutOfBounds
	}
	abs := ext.Start*int64(s.cfg.BlockSize) + off
	if err := s.data.readAt(abs, p); err != nil {
		return err
	}
	n := int64(len(p))
	seeks, nanos := s.meter.charge(abs, n)
	s.stats.BytesRead += n
	s.stats.BlocksRead += (n + int64(s.cfg.BlockSize) - 1) / int64(s.cfg.BlockSize)
	w := &s.work[s.cause]
	w.Seeks += seeks
	w.BytesRead += n
	w.SimTime += time.Duration(nanos)
	return nil
}

// Stats implements BlockStore.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := s.stats
	st.Seeks = s.meter.seeks
	st.SimTime = time.Duration(s.meter.simNanos)
	return st
}

// ResetStats implements BlockStore. The work ledger is reset along with
// the activity counters; the current cause is kept.
func (s *Store) ResetStats() {
	s.mu.Lock()
	defer s.mu.Unlock()
	used, peak := s.stats.UsedBlocks, s.stats.UsedBlocks
	s.stats = Stats{UsedBlocks: used, PeakBlocks: peak}
	s.work = [numCauses]CauseStats{}
	s.meter.seeks = 0
	s.meter.simNanos = 0
	s.meter.lastPos = -1
}

// SetCause labels subsequent disk work with the given cause. The label
// is store-wide: with concurrent activity of mixed provenance (e.g.
// queries running during a transition), work is attributed to whichever
// cause is current when each operation lands — approximate in the same
// way per-query Stats deltas are, and exact in the common case where
// transitions, checkpoints, and recovery hold the index lock.
func (s *Store) SetCause(c Cause) {
	if c < 0 || c >= numCauses {
		c = CauseQuery
	}
	s.mu.Lock()
	s.cause = c
	s.mu.Unlock()
}

// Cause returns the store's current work-attribution label.
func (s *Store) Cause() Cause {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.cause
}

// Work returns the store's work ledger: one row per cause in Causes
// order, including zero rows, so callers can render a stable series set.
func (s *Store) Work() []CauseStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]CauseStats, numCauses)
	for i := range s.work {
		out[i] = s.work[i]
		out[i].Cause = Cause(i)
	}
	return out
}

// SumWork adds work ledgers row-wise (e.g. across the stores of one
// index); all ledgers must come from Work, which fixes the row order.
func SumWork(ledgers ...[]CauseStats) []CauseStats {
	out := make([]CauseStats, numCauses)
	for i := range out {
		out[i].Cause = Cause(i)
	}
	for _, rows := range ledgers {
		for _, r := range rows {
			if r.Cause < 0 || r.Cause >= numCauses {
				continue
			}
			o := &out[r.Cause]
			o.Seeks += r.Seeks
			o.BytesRead += r.BytesRead
			o.BytesWritten += r.BytesWritten
			o.SimTime += r.SimTime
		}
	}
	return out
}

// Close implements BlockStore.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	s.closed = true
	return s.data.close()
}

// FreeBlocks returns the number of blocks on the free list (fragmentation
// diagnostics for tests).
func (s *Store) FreeBlocks() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	var n int64
	for _, f := range s.alloc.free {
		n += f.Blocks
	}
	return n
}

// FreeRuns returns the number of distinct runs on the free list.
func (s *Store) FreeRuns() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.alloc.free)
}

// ramBackend stores bytes in a growable slice.
type ramBackend struct {
	buf []byte
}

func (r *ramBackend) grow(n int64) {
	if n <= int64(len(r.buf)) {
		return
	}
	nb := make([]byte, n+n/2)
	copy(nb, r.buf)
	r.buf = nb
}

func (r *ramBackend) writeAt(off int64, p []byte) error {
	r.grow(off + int64(len(p)))
	copy(r.buf[off:], p)
	return nil
}

func (r *ramBackend) readAt(off int64, p []byte) error {
	r.grow(off + int64(len(p)))
	copy(p, r.buf[off:])
	return nil
}

func (r *ramBackend) close() error {
	r.buf = nil
	return nil
}
