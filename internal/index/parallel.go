package index

import (
	"sync"
)

// This file holds the index package's maintenance execution helpers: a
// bounded worker pool with the same semantics as the core query engine
// (inline when sequential, one goroutine per task otherwise, first error
// by task index) and a byte-buffer pool for the bulk I/O hot paths.
//
// Parallelism inside an index operation applies to CPU-side work only —
// collating, encoding, and decoding entries. All block-store I/O keeps
// its sequential issue order: a simulated store serialises operations
// under one mutex and charges a seek whenever the access position moves,
// so interleaving I/O from several workers on one store would only
// inflate the simulated cost nondeterministically. Cross-store I/O
// parallelism lives a layer up, in core's multi-disk backend, where
// whole constituents are built on distinct stores concurrently.

// runWorkers executes tasks 0..n-1 with at most parallelism running at
// once and returns the first error by task index. With n <= 1 or
// parallelism <= 1 the tasks run inline on the caller's goroutine — the
// deterministic sequential path, mirroring core.Engine.Run.
func runWorkers(parallelism, n int, task func(i int) error) error {
	if n <= 0 {
		return nil
	}
	if n == 1 || parallelism <= 1 {
		for i := 0; i < n; i++ {
			if err := task(i); err != nil {
				return err
			}
		}
		return nil
	}
	sem := make(chan struct{}, parallelism)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			errs[i] = task(i)
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// chunkRanges splits n items into at most chunks contiguous [lo, hi)
// ranges of near-equal size.
func chunkRanges(n, chunks int) [][2]int {
	if n <= 0 {
		return nil
	}
	if chunks < 1 {
		chunks = 1
	}
	if chunks > n {
		chunks = n
	}
	out := make([][2]int, 0, chunks)
	small := n / chunks
	extra := n % chunks
	lo := 0
	for i := 0; i < chunks; i++ {
		size := small
		if i < extra {
			size++
		}
		out = append(out, [2]int{lo, lo + size})
		lo += size
	}
	return out
}

// groupByKeyParallel collates batches into per-key entry lists like
// groupByKey, but splits the batches across workers with private maps and
// merges them in chunk order — so each key's entries appear in the same
// batch-then-posting order the serial collation produces.
func groupByKeyParallel(parallelism int, batches []*Batch) map[string][]Entry {
	ranges := chunkRanges(len(batches), parallelism)
	if len(ranges) <= 1 {
		return groupByKey(batches)
	}
	parts := make([]map[string][]Entry, len(ranges))
	runWorkers(parallelism, len(ranges), func(ci int) error {
		r := ranges[ci]
		parts[ci] = groupByKey(batches[r[0]:r[1]])
		return nil
	})
	m := parts[0]
	for _, p := range parts[1:] {
		for k, es := range p {
			m[k] = append(m[k], es...)
		}
	}
	return m
}

// bufPool recycles the byte buffers of bucket reads, shadow copies, and
// packed builds. Buffers are handed out at least n bytes long and
// returned whole; the pool keeps capacities up to maxPooledBuf.
var bufPool = sync.Pool{
	New: func() any { return new([]byte) },
}

// maxPooledBuf caps the capacity putBuf recycles. Without it a single
// outsized allocation — a hot key's merged bucket, a whole packed
// constituent image — pins its high-water capacity in the pool
// indefinitely: later small getBuf calls keep handing the giant buffer
// back out, and the pool's steady-state footprint becomes the largest
// transient ever seen instead of the working set.
const maxPooledBuf = 1 << 20

// getBuf returns a length-n buffer from the pool.
func getBuf(n int) []byte {
	bp := bufPool.Get().(*[]byte)
	if cap(*bp) < n {
		*bp = make([]byte, n)
	}
	return (*bp)[:n]
}

// putBuf returns a buffer obtained from getBuf to the pool. The caller
// must not retain any reference into it. Buffers over maxPooledBuf are
// dropped for the GC instead of pooled.
func putBuf(b []byte) {
	if cap(b) > maxPooledBuf {
		return
	}
	bufPool.Put(&b)
}
