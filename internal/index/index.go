package index

import (
	"errors"
	"fmt"
	"sort"

	"waveindex/internal/simdisk"
)

// Common index errors.
var (
	ErrDropped  = errors.New("index: operation on dropped index")
	ErrNoBucket = errors.New("index: no bucket for key")
)

// Options configure an index's directory and incremental growth policy.
type Options struct {
	// Dir selects the directory structure (hash table or B+Tree).
	Dir DirKind
	// Growth is the CONTIGUOUS growth factor g: when a bucket overflows,
	// its region is reallocated to g times the current capacity. The paper
	// uses g = 2.0 for skewed text keys and g = 1.08 for uniform TPC-D
	// keys. Values <= 1 default to 2.0.
	Growth float64
	// MinBucketCap is the smallest entry capacity allocated for a new
	// bucket created by an incremental add. 0 means 4.
	MinBucketCap int
	// Parallelism bounds the worker pool bulk operations (BuildPacked,
	// Clone, PackedMerge) use for CPU-side work: collating batches,
	// encoding packed segments, and decoding scanned buckets. Block-store
	// I/O keeps its sequential issue order regardless, so the built index
	// is byte-identical and the simulated disk cost unchanged at any
	// setting. Values <= 1 run sequentially on the caller's goroutine.
	Parallelism int
}

func (o Options) withDefaults() Options {
	if o.Growth <= 1 {
		o.Growth = 2.0
	}
	if o.MinBucketCap <= 0 {
		o.MinBucketCap = 4
	}
	return o
}

// Index is one constituent index of a wave index: an in-memory directory
// over buckets of entries stored on a block store, covering a set of days
// (its time-set). Index is not safe for concurrent use; the wave layer
// serialises access.
type Index struct {
	store      simdisk.BlockStore
	opts       Options
	dir        directory
	days       map[int]struct{}
	seg        simdisk.Extent // packed segment; invalid when absent
	packed     bool
	entries    int
	allocBytes int64
	dropped    bool
	// dayMin/dayMax cache the bounds of the time-set so intersection
	// tests are O(1). They are meaningful only when days is non-empty and
	// are maintained by every mutation, never by readers, so concurrent
	// queries can call DayBounds without synchronisation.
	dayMin, dayMax int
}

// NewEmpty returns an index with no entries and an empty time-set.
func NewEmpty(store simdisk.BlockStore, opts Options) *Index {
	opts = opts.withDefaults()
	return &Index{
		store:  store,
		opts:   opts,
		dir:    newDirectory(opts.Dir),
		days:   make(map[int]struct{}),
		packed: true, // vacuously packed: no unpacked buckets exist
	}
}

// BuildPacked builds a packed index over the given day batches: it counts
// the entries of each search value, allocates one contiguous segment of
// exactly the needed size, and lays the buckets out back to back in key
// order. This is the BuildIndex primitive of §2.2.
func BuildPacked(store simdisk.BlockStore, opts Options, batches ...*Batch) (*Index, error) {
	days := make(map[int]struct{}, len(batches))
	for _, b := range batches {
		days[b.Day] = struct{}{}
	}
	o := opts.withDefaults()
	idx, err := buildFromGroups(store, o, groupByKeyParallel(o.Parallelism, batches), days)
	if err != nil {
		return nil, fmt.Errorf("index: build: %w", err)
	}
	return idx, nil
}

// bucketTarget returns the extent and base byte offset holding b's entries.
func (idx *Index) bucketTarget(b *bucketRef) (simdisk.Extent, int64) {
	if b.owned {
		return b.ext, 0
	}
	return idx.seg, b.off
}

// readBucket returns the live entries of b. The transfer buffer is
// pooled; the decoded entries are freshly allocated and safe to retain.
func (idx *Index) readBucket(b *bucketRef) ([]Entry, error) {
	if b.used == 0 {
		return nil, nil
	}
	buf, err := idx.readBucketRaw(b)
	if err != nil {
		return nil, err
	}
	es := decodeEntries(buf, b.used)
	putBuf(buf)
	return es, nil
}

// readBucketRaw reads b's encoded entries into a pooled buffer; the
// caller must release it with putBuf.
func (idx *Index) readBucketRaw(b *bucketRef) ([]byte, error) {
	ext, base := idx.bucketTarget(b)
	buf := getBuf(b.used * EntrySize)
	if err := idx.store.ReadAt(ext, base, buf); err != nil {
		putBuf(buf)
		return nil, err
	}
	return buf, nil
}

// Add incrementally indexes the postings of the given day batches using
// the CONTIGUOUS scheme: entries are appended into each bucket's region,
// and a full region is reallocated to Growth times its capacity. This is
// the AddToIndex primitive of §2.2; the result is in general not packed.
func (idx *Index) Add(batches ...*Batch) error {
	if idx.dropped {
		return ErrDropped
	}
	groups := groupByKey(batches)
	keys := make([]string, 0, len(groups))
	for k := range groups {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		if err := idx.addToBucket(k, groups[k]); err != nil {
			return fmt.Errorf("index: add %q: %w", k, err)
		}
	}
	for _, b := range batches {
		idx.noteDay(b.Day)
	}
	return nil
}

func (idx *Index) addToBucket(key string, es []Entry) error {
	b, ok := idx.dir.get(key)
	if !ok {
		// New search value: allocate a fresh region with growth headroom.
		capEntries := len(es)
		if capEntries < idx.opts.MinBucketCap {
			capEntries = idx.opts.MinBucketCap
		}
		ext, realCap, err := idx.allocBucket(capEntries)
		if err != nil {
			return err
		}
		buf := encodeEntries(es)
		err = idx.store.WriteAt(ext, 0, buf)
		putBuf(buf)
		if err != nil {
			return err
		}
		idx.dir.set(key, &bucketRef{ext: ext, used: len(es), cap: realCap, owned: true})
		idx.entries += len(es)
		// Incrementally created buckets carry growth headroom, so the
		// index no longer satisfies the paper's packed definition
		// ("minimal space, without room for growth").
		idx.packed = false
		return nil
	}
	if b.used+len(es) <= b.cap {
		ext, base := idx.bucketTarget(b)
		buf := encodeEntries(es)
		err := idx.store.WriteAt(ext, base+int64(b.used*EntrySize), buf)
		putBuf(buf)
		if err != nil {
			return err
		}
		b.used += len(es)
		idx.entries += len(es)
		return nil
	}
	// CONTIGUOUS overflow: reallocate to g * cap (at least enough for the
	// incoming entries), copy the old entries over, release the old region.
	old, err := idx.readBucket(b)
	if err != nil {
		return err
	}
	need := b.used + len(es)
	grown := int(float64(b.cap) * idx.opts.Growth)
	if grown <= b.cap {
		grown = b.cap + 1
	}
	if grown < need {
		grown = need
	}
	ext, realCap, err := idx.allocBucket(grown)
	if err != nil {
		return err
	}
	merged := append(old, es...)
	buf := encodeEntries(merged)
	werr := idx.store.WriteAt(ext, 0, buf)
	putBuf(buf)
	if werr != nil {
		return werr
	}
	if b.owned {
		idx.allocBytes -= b.ext.Bytes(idx.store.BlockSize())
		if err := idx.store.Free(b.ext); err != nil {
			return err
		}
	}
	b.ext, b.off, b.owned = ext, 0, true
	b.used, b.cap = len(merged), realCap
	idx.entries += len(es)
	idx.packed = false
	return nil
}

// allocBucket allocates a private region for at least capEntries entries
// and returns the extent and the true entry capacity of the allocation.
func (idx *Index) allocBucket(capEntries int) (simdisk.Extent, int, error) {
	bs := int64(idx.store.BlockSize())
	blocks := (int64(capEntries)*EntrySize + bs - 1) / bs
	ext, err := idx.store.Alloc(blocks)
	if err != nil {
		return simdisk.Extent{}, 0, err
	}
	idx.allocBytes += ext.Bytes(idx.store.BlockSize())
	return ext, int(ext.Bytes(idx.store.BlockSize()) / EntrySize), nil
}

// Delete removes every entry whose timestamp falls on one of the given
// days, compacting each affected bucket in place, and removes the days
// from the time-set. This is the DeleteFromIndex primitive of §2.2.
func (idx *Index) Delete(days ...int) error {
	if idx.dropped {
		return ErrDropped
	}
	drop := make(map[int32]struct{}, len(days))
	for _, d := range days {
		drop[int32(d)] = struct{}{}
	}
	type change struct {
		key  string
		b    *bucketRef
		kept []Entry
	}
	var changes []change
	var err error
	idx.dir.ascend(func(key string, b *bucketRef) bool {
		var es []Entry
		es, err = idx.readBucket(b)
		if err != nil {
			return false
		}
		kept := es[:0]
		for _, e := range es {
			if _, gone := drop[e.Day]; !gone {
				kept = append(kept, e)
			}
		}
		if len(kept) != len(es) {
			changes = append(changes, change{key, b, append([]Entry(nil), kept...)})
		}
		return true
	})
	if err != nil {
		return fmt.Errorf("index: delete: %w", err)
	}
	for _, c := range changes {
		removed := c.b.used - len(c.kept)
		if len(c.kept) == 0 {
			if c.b.owned {
				idx.allocBytes -= c.b.ext.Bytes(idx.store.BlockSize())
				if err := idx.store.Free(c.b.ext); err != nil {
					return fmt.Errorf("index: delete: %w", err)
				}
			}
			idx.dir.delete(c.key)
		} else {
			ext, base := idx.bucketTarget(c.b)
			buf := encodeEntries(c.kept)
			werr := idx.store.WriteAt(ext, base, buf)
			putBuf(buf)
			if werr != nil {
				return fmt.Errorf("index: delete: %w", werr)
			}
			c.b.used = len(c.kept)
			idx.packed = false // the freed tail of the bucket is a hole
		}
		idx.entries -= removed
	}
	for _, d := range days {
		delete(idx.days, d)
	}
	idx.recomputeDayBounds()
	return nil
}

// Probe retrieves the entries filed under key whose timestamps fall in
// [t1, t2] (inclusive), sorted by (day, record, aux). It costs one bucket
// read: a seek plus the transfer of the bucket. Probing a key with no
// bucket returns no entries.
func (idx *Index) Probe(key string, t1, t2 int) ([]Entry, error) {
	if idx.dropped {
		return nil, ErrDropped
	}
	b, ok := idx.dir.get(key)
	if !ok {
		return nil, nil
	}
	es, err := idx.readBucket(b)
	if err != nil {
		return nil, fmt.Errorf("index: probe %q: %w", key, err)
	}
	es = filterByDay(es, t1, t2)
	SortEntries(es)
	return es, nil
}

// ProbeMulti probes several keys in one pass, returning per-key entry
// lists aligned with keys (nil for keys with no bucket), each sorted like
// Probe's result. The directory is consulted once per key and the
// qualifying buckets are read in ascending disk order, so on a packed
// index adjacent buckets transfer sequentially without a seek — the
// batched counterpart of len(keys) independent Probes.
func (idx *Index) ProbeMulti(keys []string, t1, t2 int) ([][]Entry, error) {
	if idx.dropped {
		return nil, ErrDropped
	}
	type req struct {
		i   int
		b   *bucketRef
		pos int64 // absolute byte position of the bucket on the store
	}
	bs := int64(idx.store.BlockSize())
	reqs := make([]req, 0, len(keys))
	for i, k := range keys {
		b, ok := idx.dir.get(k)
		if !ok || b.used == 0 {
			continue
		}
		ext, base := idx.bucketTarget(b)
		reqs = append(reqs, req{i: i, b: b, pos: ext.Start*bs + base})
	}
	sort.Slice(reqs, func(a, b int) bool { return reqs[a].pos < reqs[b].pos })
	out := make([][]Entry, len(keys))
	for _, r := range reqs {
		es, err := idx.readBucket(r.b)
		if err != nil {
			return nil, fmt.Errorf("index: multiprobe %q: %w", keys[r.i], err)
		}
		es = filterByDay(es, t1, t2)
		SortEntries(es)
		if len(es) > 0 {
			out[r.i] = es
		}
	}
	return out, nil
}

// Scan visits every entry with a timestamp in [t1, t2] in ascending key
// order, stopping early if fn returns false. On a packed index the buckets
// are laid out in key order, so the scan is one seek plus a sequential
// transfer of the whole segment.
func (idx *Index) Scan(t1, t2 int, fn func(key string, e Entry) bool) error {
	if idx.dropped {
		return ErrDropped
	}
	var err error
	idx.dir.ascend(func(key string, b *bucketRef) bool {
		var es []Entry
		es, err = idx.readBucket(b)
		if err != nil {
			return false
		}
		for _, e := range filterByDay(es, t1, t2) {
			if !fn(key, e) {
				return false
			}
		}
		return true
	})
	if err != nil {
		return fmt.Errorf("index: scan: %w", err)
	}
	return nil
}

func filterByDay(es []Entry, t1, t2 int) []Entry {
	out := make([]Entry, 0, len(es))
	for _, e := range es {
		if int(e.Day) >= t1 && int(e.Day) <= t2 {
			out = append(out, e)
		}
	}
	return out
}

// SortEntries orders entries by (day, record, aux) — the canonical probe
// result order, which makes per-constituent results mergeable streams.
func SortEntries(es []Entry) {
	sort.Slice(es, func(i, j int) bool {
		if es[i].Day != es[j].Day {
			return es[i].Day < es[j].Day
		}
		if es[i].RecordID != es[j].RecordID {
			return es[i].RecordID < es[j].RecordID
		}
		return es[i].Aux < es[j].Aux
	})
}

// Drop frees all storage held by the index and marks it unusable. This is
// the bulk-delete operation that makes throw-away maintenance cheap: its
// cost is independent of the index size.
func (idx *Index) Drop() error {
	if idx.dropped {
		return ErrDropped
	}
	var err error
	idx.dir.ascend(func(_ string, b *bucketRef) bool {
		if b.owned {
			if e := idx.store.Free(b.ext); e != nil && err == nil {
				err = e
			}
		}
		return true
	})
	if idx.seg.Valid() {
		if e := idx.store.Free(idx.seg); e != nil && err == nil {
			err = e
		}
	}
	idx.dropped = true
	idx.dir = newDirectory(idx.opts.Dir)
	idx.days = make(map[int]struct{})
	idx.entries = 0
	idx.allocBytes = 0
	if err != nil {
		return fmt.Errorf("index: drop: %w", err)
	}
	return nil
}

// noteDay adds d to the time-set, keeping the cached day bounds current.
func (idx *Index) noteDay(d int) {
	if len(idx.days) == 0 || d < idx.dayMin {
		idx.dayMin = d
	}
	if len(idx.days) == 0 || d > idx.dayMax {
		idx.dayMax = d
	}
	idx.days[d] = struct{}{}
}

// recomputeDayBounds rebuilds the cached bounds after day removals.
func (idx *Index) recomputeDayBounds() {
	first := true
	for d := range idx.days {
		if first || d < idx.dayMin {
			idx.dayMin = d
		}
		if first || d > idx.dayMax {
			idx.dayMax = d
		}
		first = false
	}
}

// DayBounds returns the smallest and largest day of the time-set in O(1);
// ok is false when the time-set is empty.
func (idx *Index) DayBounds() (min, max int, ok bool) {
	if len(idx.days) == 0 {
		return 0, 0, false
	}
	return idx.dayMin, idx.dayMax, true
}

// Days returns the index's time-set in ascending order.
func (idx *Index) Days() []int {
	out := make([]int, 0, len(idx.days))
	for d := range idx.days {
		out = append(out, d)
	}
	sort.Ints(out)
	return out
}

// HasDay reports whether day is in the index's time-set.
func (idx *Index) HasDay(day int) bool {
	_, ok := idx.days[day]
	return ok
}

// NumDays returns the size of the time-set.
func (idx *Index) NumDays() int { return len(idx.days) }

// NumEntries returns the number of live entries.
func (idx *Index) NumEntries() int { return idx.entries }

// NumKeys returns the number of distinct search values.
func (idx *Index) NumKeys() int { return idx.dir.len() }

// SizeBytes returns the storage currently allocated to the index,
// including growth headroom and unpacked holes — the paper's S' measure.
func (idx *Index) SizeBytes() int64 { return idx.allocBytes }

// Packed reports whether every bucket is stored with minimal space and the
// buckets are contiguous on disk.
func (idx *Index) Packed() bool { return idx.packed }

// Dropped reports whether Drop has been called.
func (idx *Index) Dropped() bool { return idx.dropped }

// Store returns the block store the index lives on.
func (idx *Index) Store() simdisk.BlockStore { return idx.store }

// Opts returns the index options.
func (idx *Index) Opts() Options { return idx.opts }
