package index

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"waveindex/internal/simdisk"
)

func synthBatches(days, perDay int, seed int64) []*Batch {
	rng := rand.New(rand.NewSource(seed))
	batches := make([]*Batch, 0, days)
	var id uint64
	for d := 1; d <= days; d++ {
		b := &Batch{Day: d}
		for i := 0; i < perDay; i++ {
			id++
			b.Postings = append(b.Postings, Posting{
				Key:   fmt.Sprintf("k%03d", rng.Intn(137)),
				Entry: Entry{RecordID: id, Aux: uint32(rng.Intn(1000)), Day: int32(d)},
			})
		}
		batches = append(batches, b)
	}
	return batches
}

// render flattens the index into scan order, the logical content a query
// would observe.
func render(t *testing.T, idx *Index) []string {
	t.Helper()
	var rows []string
	if err := idx.Scan(-1<<30, 1<<30, func(key string, e Entry) bool {
		rows = append(rows, fmt.Sprintf("%s %d %d %d", key, e.RecordID, e.Aux, e.Day))
		return true
	}); err != nil {
		t.Fatalf("scan: %v", err)
	}
	return rows
}

func sameRows(t *testing.T, what string, a, b []string) {
	t.Helper()
	if len(a) != len(b) {
		t.Fatalf("%s: %d rows vs %d rows", what, len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("%s: row %d: %q vs %q", what, i, a[i], b[i])
		}
	}
}

// TestParallelBuildDeterminism checks the Parallelism knob is invisible:
// BuildPacked at any setting yields the same scan order and charges the
// store the identical simulated cost.
func TestParallelBuildDeterminism(t *testing.T) {
	batches := synthBatches(7, 400, 1)
	var refRows []string
	var refStats simdisk.Stats
	for _, p := range []int{1, 2, 8} {
		s := simdisk.NewRAM(simdisk.Config{BlockSize: 256})
		idx, err := BuildPacked(s, Options{Parallelism: p}, batches...)
		if err != nil {
			t.Fatalf("parallelism %d: build: %v", p, err)
		}
		rows, stats := render(t, idx), s.Stats()
		if p == 1 {
			refRows, refStats = rows, stats
			continue
		}
		sameRows(t, fmt.Sprintf("parallelism %d build", p), refRows, rows)
		if stats != refStats {
			t.Errorf("parallelism %d: stats %+v, want %+v", p, stats, refStats)
		}
	}
}

// TestParallelPackedMergeDeterminism checks PackedMerge — the packed
// shadow transition step — is likewise parallelism-invariant, in both
// content and simulated disk charges.
func TestParallelPackedMergeDeterminism(t *testing.T) {
	base := synthBatches(7, 300, 2)
	add := synthBatches(8, 300, 3)[7:]
	var refRows []string
	var refStats simdisk.Stats
	for _, p := range []int{1, 8} {
		s := simdisk.NewRAM(simdisk.Config{BlockSize: 256})
		idx, err := BuildPacked(s, Options{Parallelism: p}, base...)
		if err != nil {
			t.Fatalf("build: %v", err)
		}
		s.ResetStats()
		merged, err := idx.PackedMerge([]int{1}, add...)
		if err != nil {
			t.Fatalf("parallelism %d: merge: %v", p, err)
		}
		rows, stats := render(t, merged), s.Stats()
		if p == 1 {
			refRows, refStats = rows, stats
			continue
		}
		sameRows(t, fmt.Sprintf("parallelism %d merge", p), refRows, rows)
		if stats != refStats {
			t.Errorf("parallelism %d: stats %+v, want %+v", p, stats, refStats)
		}
	}
}

// TestClonePooledBuffers exercises the pooled-buffer clone path on both
// physical shapes.
func TestCloneEquivalence(t *testing.T) {
	batches := synthBatches(5, 200, 4)
	s := simdisk.NewRAM(simdisk.Config{BlockSize: 256})
	idx, err := BuildPacked(s, Options{Parallelism: 4}, batches...)
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	if err := idx.Add(synthBatches(6, 100, 5)[5:]...); err != nil {
		t.Fatalf("add: %v", err)
	}
	cl, err := idx.Clone()
	if err != nil {
		t.Fatalf("clone: %v", err)
	}
	sameRows(t, "clone", render(t, idx), render(t, cl))
}

func TestChunkRanges(t *testing.T) {
	for _, tc := range []struct {
		n, chunks int
		want      int // number of ranges
	}{
		{0, 4, 0}, {1, 4, 1}, {4, 4, 4}, {10, 3, 3}, {10, 0, 1}, {3, 8, 3},
	} {
		got := chunkRanges(tc.n, tc.chunks)
		if len(got) != tc.want {
			t.Errorf("chunkRanges(%d,%d) = %v ranges, want %d", tc.n, tc.chunks, got, tc.want)
		}
		next := 0
		for _, r := range got {
			if r[0] != next || r[1] < r[0] {
				t.Errorf("chunkRanges(%d,%d) = %v: not contiguous", tc.n, tc.chunks, got)
			}
			next = r[1]
		}
		if tc.n > 0 && next != tc.n {
			t.Errorf("chunkRanges(%d,%d) covers %d items", tc.n, tc.chunks, next)
		}
	}
}

// TestBufPoolStabilises checks putBuf's capacity cap: pool-sized
// buffers round-trip, but an outsized buffer returned to the pool must
// not come back from a later small getBuf. Without the cap one giant
// transient (a hot key's merged bucket) pins its capacity in the pool
// and every subsequent small request drags the whole allocation along.
func TestBufPoolStabilises(t *testing.T) {
	// Pool-sized buffers are recycled: capacity survives a round trip.
	b := getBuf(512)
	b = append(b[:0], make([]byte, 4096)...) // grow within the cap
	putBuf(b)

	// An outsized buffer must be dropped on put...
	huge := getBuf(maxPooledBuf + 1)
	if cap(huge) <= maxPooledBuf {
		t.Fatalf("getBuf(%d) cap = %d", maxPooledBuf+1, cap(huge))
	}
	putBuf(huge)

	// ...so no later get, small or large, may observe a pooled buffer
	// over the cap. Drain more gets than we ever put to force pool
	// misses too.
	for i := 0; i < 64; i++ {
		g := getBuf(64)
		if cap(g) > maxPooledBuf {
			t.Fatalf("get %d returned over-cap buffer: cap %d > %d", i, cap(g), maxPooledBuf)
		}
		putBuf(g)
	}
}

// TestBufPoolReuseUnderChurn drives concurrent get/put churn with
// mixed sizes under the race detector and checks every handed-out
// buffer has the requested length.
func TestBufPoolReuseUnderChurn(t *testing.T) {
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			sizes := []int{16, 900, 64 << 10, maxPooledBuf + 7}
			for i := 0; i < 200; i++ {
				n := sizes[(w+i)%len(sizes)]
				b := getBuf(n)
				if len(b) != n {
					t.Errorf("getBuf(%d) len = %d", n, len(b))
					return
				}
				b[0], b[n-1] = byte(w), byte(i)
				putBuf(b)
			}
		}(w)
	}
	wg.Wait()
}
