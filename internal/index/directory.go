package index

import (
	"sort"
	"sync"

	"waveindex/internal/btree"
	"waveindex/internal/simdisk"
)

// bucketRef locates a bucket's entries on the store. A bucket either owns
// a private extent (owned == true, entries start at byte 0 of ext) or
// lives inside the index's packed segment at byte offset off.
type bucketRef struct {
	ext   simdisk.Extent // private extent when owned
	off   int64          // byte offset within the packed segment when !owned
	used  int            // entries currently stored
	cap   int            // entry capacity of the bucket's region
	owned bool           // true when the bucket exclusively owns its extent
}

// DirKind selects the directory structure of an index. The paper allows
// any in-memory search structure; both options it names are provided.
type DirKind int

const (
	// HashDir uses a hash table (Go map) directory. Probes are O(1);
	// ordered iteration sorts keys on demand and caches the order.
	HashDir DirKind = iota
	// BTreeDir uses an in-memory B+Tree directory with naturally ordered
	// iteration.
	BTreeDir
)

func (k DirKind) String() string {
	switch k {
	case HashDir:
		return "hash"
	case BTreeDir:
		return "btree"
	}
	return "unknown"
}

// directory maps search values to buckets. Implementations must iterate in
// ascending key order so packed segment layouts are deterministic.
type directory interface {
	get(key string) (*bucketRef, bool)
	set(key string, b *bucketRef)
	delete(key string)
	ascend(fn func(key string, b *bucketRef) bool)
	len() int
}

func newDirectory(kind DirKind) directory {
	switch kind {
	case BTreeDir:
		return &btreeDir{t: btree.New[string, *bucketRef]()}
	default:
		return &hashDir{m: make(map[string]*bucketRef)}
	}
}

// hashDir is a map-backed directory with a cached sorted key list.
//
// Mutation (set, delete) is only ever single-goroutine — in-place updates
// hold the wave's write lock and shadow updates work on private copies —
// but ascend runs concurrently from query goroutines and from the
// maintenance goroutine cloning a live index, so the lazily built cache
// needs its own lock.
type hashDir struct {
	m      map[string]*bucketRef
	mu     sync.Mutex
	sorted []string // cache; nil when dirty, guarded by mu
}

func (d *hashDir) get(key string) (*bucketRef, bool) {
	b, ok := d.m[key]
	return b, ok
}

func (d *hashDir) set(key string, b *bucketRef) {
	if _, exists := d.m[key]; !exists {
		d.mu.Lock()
		d.sorted = nil
		d.mu.Unlock()
	}
	d.m[key] = b
}

func (d *hashDir) delete(key string) {
	if _, exists := d.m[key]; exists {
		delete(d.m, key)
		d.mu.Lock()
		d.sorted = nil
		d.mu.Unlock()
	}
}

func (d *hashDir) ascend(fn func(string, *bucketRef) bool) {
	d.mu.Lock()
	if d.sorted == nil {
		d.sorted = make([]string, 0, len(d.m))
		for k := range d.m {
			d.sorted = append(d.sorted, k)
		}
		sort.Strings(d.sorted)
	}
	keys := d.sorted
	d.mu.Unlock()
	for _, k := range keys {
		if !fn(k, d.m[k]) {
			return
		}
	}
}

func (d *hashDir) len() int { return len(d.m) }

// btreeDir adapts btree.Tree to the directory interface.
type btreeDir struct {
	t *btree.Tree[string, *bucketRef]
}

func (d *btreeDir) get(key string) (*bucketRef, bool) { return d.t.Get(key) }
func (d *btreeDir) set(key string, b *bucketRef)      { d.t.Set(key, b) }
func (d *btreeDir) delete(key string)                 { d.t.Delete(key) }
func (d *btreeDir) len() int                          { return d.t.Len() }

func (d *btreeDir) ascend(fn func(string, *bucketRef) bool) {
	d.t.Ascend(func(k string, b *bucketRef) bool { return fn(k, b) })
}
