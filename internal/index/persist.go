package index

import (
	"fmt"
	"io"

	"waveindex/internal/simdisk"
	"waveindex/internal/wire"
)

const snapshotMagic = "WIDX1"

// maxSnapshotBucketCap bounds the per-bucket capacity a snapshot may
// declare (16M entries ≈ 256 MB): far above any real bucket, far below
// what a corrupt length field could otherwise demand.
const maxSnapshotBucketCap = 1 << 24

// WriteSnapshot serialises the index's logical content and physical shape
// (time-set, options, per-bucket entries, packedness and growth headroom)
// so ReadSnapshot can rebuild an equivalent index on any block store.
func (idx *Index) WriteSnapshot(w io.Writer) error {
	if idx.dropped {
		return ErrDropped
	}
	ww := wire.NewWriter(w)
	ww.Magic(snapshotMagic)
	ww.Int(int(idx.opts.Dir))
	ww.I64(int64(idx.opts.Growth * 1000)) // growth in thousandths
	ww.Int(idx.opts.MinBucketCap)
	ww.Bool(idx.packed)
	ww.Ints(idx.Days())
	ww.Int(idx.dir.len())
	var err error
	idx.dir.ascend(func(key string, b *bucketRef) bool {
		ww.String(key)
		ww.Int(b.cap)
		var es []Entry
		es, err = idx.readBucket(b)
		if err != nil {
			return false
		}
		buf := encodeEntries(es)
		ww.Bytes(buf)
		putBuf(buf)
		return true
	})
	if err != nil {
		return fmt.Errorf("index: snapshot: %w", err)
	}
	return ww.Flush()
}

// ReadSnapshot rebuilds an index from a snapshot onto the given store.
// The restored index preserves the snapshot's packedness: a packed
// snapshot is rebuilt as one contiguous segment, an unpacked one gets
// per-bucket extents with the original growth headroom.
func ReadSnapshot(store simdisk.BlockStore, r io.Reader) (*Index, error) {
	rr := wire.NewReader(r)
	rr.Expect(snapshotMagic)
	dir := DirKind(rr.Int())
	growth := float64(rr.I64()) / 1000
	minCap := rr.Int()
	packed := rr.Bool()
	days := rr.Ints()
	numKeys := rr.Int()
	if err := rr.Err(); err != nil {
		return nil, fmt.Errorf("index: restore: %w", err)
	}
	// All counts and capacities come from untrusted bytes: a corrupt
	// snapshot must fail with an error, not a makeslice panic or an
	// unbounded allocation driven by a flipped bit in a length field.
	if numKeys < 0 {
		return nil, fmt.Errorf("index: restore: negative key count %d", numKeys)
	}
	if minCap < 0 || minCap > maxSnapshotBucketCap {
		return nil, fmt.Errorf("index: restore: implausible min bucket cap %d", minCap)
	}
	type bucket struct {
		key     string
		cap     int
		entries []Entry
	}
	buckets := make([]bucket, 0, min(numKeys, 1<<16))
	total := 0
	for i := 0; i < numKeys; i++ {
		key := rr.String()
		capEntries := rr.Int()
		raw := rr.Bytes()
		if err := rr.Err(); err != nil {
			return nil, fmt.Errorf("index: restore: %w", err)
		}
		if len(raw)%EntrySize != 0 {
			return nil, fmt.Errorf("index: restore: bucket %q has %d raw bytes", key, len(raw))
		}
		es := decodeEntries(raw, len(raw)/EntrySize)
		if capEntries < len(es) {
			return nil, fmt.Errorf("index: restore: bucket %q cap %d < %d entries", key, capEntries, len(es))
		}
		if capEntries > maxSnapshotBucketCap {
			return nil, fmt.Errorf("index: restore: bucket %q cap %d exceeds limit", key, capEntries)
		}
		buckets = append(buckets, bucket{key, capEntries, es})
		total += len(es)
	}
	opts := Options{Dir: dir, Growth: growth, MinBucketCap: minCap}
	idx := NewEmpty(store, opts)
	for _, d := range days {
		idx.days[d] = struct{}{}
	}
	idx.recomputeDayBounds()
	idx.packed = packed
	bs := int64(store.BlockSize())
	if packed {
		if total > 0 {
			seg, err := store.Alloc((int64(total)*EntrySize + bs - 1) / bs)
			if err != nil {
				return nil, fmt.Errorf("index: restore: %w", err)
			}
			idx.seg = seg
			idx.allocBytes += seg.Bytes(store.BlockSize())
			buf := make([]byte, total*EntrySize)
			var off int64
			for _, b := range buckets {
				encodeEntriesInto(buf[off:], b.entries)
				idx.dir.set(b.key, &bucketRef{off: off, used: len(b.entries), cap: len(b.entries)})
				off += int64(len(b.entries) * EntrySize)
			}
			if err := store.WriteAt(seg, 0, buf); err != nil {
				return nil, fmt.Errorf("index: restore: %w", err)
			}
		}
	} else {
		for _, b := range buckets {
			ext, realCap, err := idx.allocBucket(b.cap)
			if err != nil {
				return nil, fmt.Errorf("index: restore: %w", err)
			}
			ebuf := encodeEntries(b.entries)
			werr := store.WriteAt(ext, 0, ebuf)
			putBuf(ebuf)
			if werr != nil {
				return nil, fmt.Errorf("index: restore: %w", werr)
			}
			idx.dir.set(b.key, &bucketRef{ext: ext, used: len(b.entries), cap: realCap, owned: true})
		}
	}
	idx.entries = total
	return idx, nil
}
