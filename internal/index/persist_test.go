package index

import (
	"bytes"
	"fmt"
	"strings"
	"testing"
)

func snapshotRoundTrip(t *testing.T, idx *Index) *Index {
	t.Helper()
	var buf bytes.Buffer
	if err := idx.WriteSnapshot(&buf); err != nil {
		t.Fatalf("WriteSnapshot: %v", err)
	}
	restored, err := ReadSnapshot(idx.Store(), &buf)
	if err != nil {
		t.Fatalf("ReadSnapshot: %v", err)
	}
	return restored
}

func TestSnapshotPackedIndex(t *testing.T) {
	s := newStore(t)
	idx, err := BuildPacked(s, Options{Dir: BTreeDir}, mkBatch(1, map[string]int{"a": 4, "b": 2}), mkBatch(2, map[string]int{"a": 1}))
	if err != nil {
		t.Fatal(err)
	}
	got := snapshotRoundTrip(t, idx)
	if !got.Packed() {
		t.Error("restored index lost packedness")
	}
	if got.NumEntries() != 7 || got.NumKeys() != 2 || got.NumDays() != 2 {
		t.Errorf("restored shape: %d entries %d keys %d days", got.NumEntries(), got.NumKeys(), got.NumDays())
	}
	if fmt.Sprint(got.Days()) != "[1 2]" {
		t.Errorf("restored days = %v", got.Days())
	}
	for _, key := range []string{"a", "b"} {
		want, _ := idx.Probe(key, -1<<30, 1<<30)
		have, err := got.Probe(key, -1<<30, 1<<30)
		if err != nil {
			t.Fatal(err)
		}
		if fmt.Sprint(have) != fmt.Sprint(want) {
			t.Errorf("key %q: restored %v, want %v", key, have, want)
		}
	}
	if got.Opts().Dir != BTreeDir {
		t.Errorf("restored directory kind = %v", got.Opts().Dir)
	}
	// Restored packed scans stay single-seek.
	s.ResetStats()
	if err := got.Scan(-1<<30, 1<<30, func(string, Entry) bool { return true }); err != nil {
		t.Fatal(err)
	}
	if seeks := s.Stats().Seeks; seeks != 1 {
		t.Errorf("restored packed scan cost %d seeks", seeks)
	}
}

func TestSnapshotUnpackedIndexKeepsHeadroom(t *testing.T) {
	s := newStore(t)
	idx := NewEmpty(s, Options{Growth: 2})
	for d := 1; d <= 5; d++ {
		if err := idx.Add(mkBatch(d, map[string]int{"k": 7, "j": 2})); err != nil {
			t.Fatal(err)
		}
	}
	got := snapshotRoundTrip(t, idx)
	if got.Packed() {
		t.Error("restored unpacked index claims packed")
	}
	if got.NumEntries() != idx.NumEntries() {
		t.Errorf("entries = %d, want %d", got.NumEntries(), idx.NumEntries())
	}
	// Growth headroom survives: the restored index accepts more entries
	// without immediately relocating every bucket.
	if got.SizeBytes() < int64(got.NumEntries()*EntrySize) {
		t.Errorf("restored size %d below minimal", got.SizeBytes())
	}
	if err := got.Add(mkBatch(6, map[string]int{"k": 1})); err != nil {
		t.Fatal(err)
	}
	es, err := got.Probe("k", 6, 6)
	if err != nil {
		t.Fatal(err)
	}
	if len(es) != 1 {
		t.Errorf("post-restore add: %d entries", len(es))
	}
}

func TestSnapshotEmptyIndex(t *testing.T) {
	s := newStore(t)
	idx, _ := BuildPacked(s, Options{})
	got := snapshotRoundTrip(t, idx)
	if got.NumEntries() != 0 || got.NumKeys() != 0 {
		t.Errorf("restored empty index has content")
	}
}

func TestSnapshotErrors(t *testing.T) {
	s := newStore(t)
	idx, _ := BuildPacked(s, Options{}, mkBatch(1, map[string]int{"a": 1}))
	if err := idx.Drop(); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := idx.WriteSnapshot(&buf); err == nil {
		t.Error("snapshot of dropped index accepted")
	}
	if _, err := ReadSnapshot(s, strings.NewReader("bogus")); err == nil {
		t.Error("garbage snapshot accepted")
	}
	if _, err := ReadSnapshot(s, strings.NewReader("")); err == nil {
		t.Error("empty snapshot accepted")
	}
}

func TestAccessors(t *testing.T) {
	s := newStore(t)
	idx, _ := BuildPacked(s, Options{}, mkBatch(3, map[string]int{"x": 2}))
	if idx.NumDays() != 1 || idx.Store() != s {
		t.Error("accessors wrong")
	}
	b := mkBatch(3, map[string]int{"x": 2})
	if b.NumPostings() != 2 {
		t.Errorf("NumPostings = %d", b.NumPostings())
	}
}

func TestBTreeDirectoryDelete(t *testing.T) {
	s := newStore(t)
	idx, err := BuildPacked(s, Options{Dir: BTreeDir}, mkBatch(1, map[string]int{"gone": 2, "stays": 1}))
	if err != nil {
		t.Fatal(err)
	}
	// Deleting day 1 empties "gone"... both actually; rebuild with 2 days.
	idx2, err := BuildPacked(s, Options{Dir: BTreeDir},
		mkBatch(1, map[string]int{"gone": 2}),
		mkBatch(2, map[string]int{"stays": 1}),
	)
	if err != nil {
		t.Fatal(err)
	}
	if err := idx2.Delete(1); err != nil {
		t.Fatal(err)
	}
	if idx2.NumKeys() != 1 {
		t.Errorf("NumKeys = %d after btree-directory delete", idx2.NumKeys())
	}
	_ = idx
}
