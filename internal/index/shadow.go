package index

import (
	"fmt"
	"sort"

	"waveindex/internal/simdisk"
)

// Clone produces a byte-for-byte shadow copy of the index on the same
// store, preserving the physical layout (a packed index clones packed, an
// unpacked one keeps its growth headroom). This is the copy step of simple
// shadow updating (§2.1): queries keep using the original while the clone
// is modified, so no concurrency control is needed inside the index.
func (idx *Index) Clone() (*Index, error) {
	if idx.dropped {
		return nil, ErrDropped
	}
	out := NewEmpty(idx.store, idx.opts)
	out.packed = idx.packed
	out.entries = idx.entries
	for d := range idx.days {
		out.days[d] = struct{}{}
	}
	out.recomputeDayBounds()
	if idx.seg.Valid() {
		seg, err := idx.store.Alloc(idx.seg.Blocks)
		if err != nil {
			return nil, fmt.Errorf("index: clone: %w", err)
		}
		out.seg = seg
		out.allocBytes += seg.Bytes(idx.store.BlockSize())
		buf := make([]byte, idx.seg.Bytes(idx.store.BlockSize()))
		if err := idx.store.ReadAt(idx.seg, 0, buf); err != nil {
			return nil, fmt.Errorf("index: clone: %w", err)
		}
		if err := idx.store.WriteAt(seg, 0, buf); err != nil {
			return nil, fmt.Errorf("index: clone: %w", err)
		}
	}
	var err error
	idx.dir.ascend(func(key string, b *bucketRef) bool {
		nb := &bucketRef{off: b.off, used: b.used, cap: b.cap, owned: b.owned}
		if b.owned {
			var ext simdisk.Extent
			ext, err = idx.store.Alloc(b.ext.Blocks)
			if err != nil {
				return false
			}
			out.allocBytes += ext.Bytes(idx.store.BlockSize())
			buf := make([]byte, b.used*EntrySize)
			if err = idx.store.ReadAt(b.ext, 0, buf); err != nil {
				return false
			}
			if err = idx.store.WriteAt(ext, 0, buf); err != nil {
				return false
			}
			nb.ext = ext
		}
		out.dir.set(key, nb)
		return true
	})
	if err != nil {
		return nil, fmt.Errorf("index: clone: %w", err)
	}
	return out, nil
}

// PackedMerge implements packed shadow updating (§2.1): it scans the
// index's buckets, drops entries whose day is in expire, merges in the
// postings of adds, and writes the result as a new packed index on the
// same store. The original index is left untouched; the caller swaps it
// out of the wave index and drops it.
func (idx *Index) PackedMerge(expire []int, adds ...*Batch) (*Index, error) {
	if idx.dropped {
		return nil, ErrDropped
	}
	gone := make(map[int32]struct{}, len(expire))
	for _, d := range expire {
		gone[int32(d)] = struct{}{}
	}
	groups := make(map[string][]Entry)
	var err error
	idx.dir.ascend(func(key string, b *bucketRef) bool {
		var es []Entry
		es, err = idx.readBucket(b)
		if err != nil {
			return false
		}
		kept := make([]Entry, 0, len(es))
		for _, e := range es {
			if _, x := gone[e.Day]; !x {
				kept = append(kept, e)
			}
		}
		if len(kept) > 0 {
			groups[key] = kept
		}
		return true
	})
	if err != nil {
		return nil, fmt.Errorf("index: packed merge: %w", err)
	}
	for _, b := range adds {
		for _, p := range b.Postings {
			groups[p.Key] = append(groups[p.Key], p.Entry)
		}
	}
	days := make(map[int]struct{})
	for d := range idx.days {
		if _, x := gone[int32(d)]; !x {
			days[d] = struct{}{}
		}
	}
	for _, b := range adds {
		days[b.Day] = struct{}{}
	}
	out, err := buildFromGroups(idx.store, idx.opts, groups, days)
	if err != nil {
		return nil, fmt.Errorf("index: packed merge: %w", err)
	}
	return out, nil
}

// buildFromGroups writes a packed index for pre-collated per-key entries.
func buildFromGroups(store simdisk.BlockStore, opts Options, groups map[string][]Entry, days map[int]struct{}) (*Index, error) {
	idx := NewEmpty(store, opts)
	for d := range days {
		idx.days[d] = struct{}{}
	}
	idx.recomputeDayBounds()
	if len(groups) == 0 {
		return idx, nil
	}
	keys := make([]string, 0, len(groups))
	total := 0
	for k, es := range groups {
		keys = append(keys, k)
		total += len(es)
	}
	sort.Strings(keys)
	bs := int64(store.BlockSize())
	seg, err := store.Alloc((int64(total)*EntrySize + bs - 1) / bs)
	if err != nil {
		return nil, err
	}
	idx.seg = seg
	idx.allocBytes += seg.Bytes(store.BlockSize())
	buf := make([]byte, total*EntrySize)
	var off int64
	for _, k := range keys {
		es := groups[k]
		for i, e := range es {
			encodeEntry(buf[off+int64(i*EntrySize):], e)
		}
		idx.dir.set(k, &bucketRef{off: off, used: len(es), cap: len(es)})
		off += int64(len(es) * EntrySize)
	}
	if err := store.WriteAt(seg, 0, buf); err != nil {
		return nil, err
	}
	idx.entries = total
	return idx, nil
}
