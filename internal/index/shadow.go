package index

import (
	"fmt"
	"sort"

	"waveindex/internal/simdisk"
)

// Clone produces a byte-for-byte shadow copy of the index on the same
// store, preserving the physical layout (a packed index clones packed, an
// unpacked one keeps its growth headroom). This is the copy step of simple
// shadow updating (§2.1): queries keep using the original while the clone
// is modified, so no concurrency control is needed inside the index.
func (idx *Index) Clone() (*Index, error) {
	if idx.dropped {
		return nil, ErrDropped
	}
	out := NewEmpty(idx.store, idx.opts)
	out.packed = idx.packed
	out.entries = idx.entries
	for d := range idx.days {
		out.days[d] = struct{}{}
	}
	out.recomputeDayBounds()
	if idx.seg.Valid() {
		seg, err := idx.store.Alloc(idx.seg.Blocks)
		if err != nil {
			return nil, fmt.Errorf("index: clone: %w", err)
		}
		out.seg = seg
		out.allocBytes += seg.Bytes(idx.store.BlockSize())
		buf := getBuf(int(idx.seg.Bytes(idx.store.BlockSize())))
		if err := idx.store.ReadAt(idx.seg, 0, buf); err != nil {
			putBuf(buf)
			return nil, fmt.Errorf("index: clone: %w", err)
		}
		werr := idx.store.WriteAt(seg, 0, buf)
		putBuf(buf)
		if werr != nil {
			return nil, fmt.Errorf("index: clone: %w", werr)
		}
	}
	var err error
	idx.dir.ascend(func(key string, b *bucketRef) bool {
		nb := &bucketRef{off: b.off, used: b.used, cap: b.cap, owned: b.owned}
		if b.owned {
			var ext simdisk.Extent
			ext, err = idx.store.Alloc(b.ext.Blocks)
			if err != nil {
				return false
			}
			out.allocBytes += ext.Bytes(idx.store.BlockSize())
			buf := getBuf(b.used * EntrySize)
			if err = idx.store.ReadAt(b.ext, 0, buf); err != nil {
				putBuf(buf)
				return false
			}
			err = idx.store.WriteAt(ext, 0, buf)
			putBuf(buf)
			if err != nil {
				return false
			}
			nb.ext = ext
		}
		out.dir.set(key, nb)
		return true
	})
	if err != nil {
		return nil, fmt.Errorf("index: clone: %w", err)
	}
	return out, nil
}

// PackedMerge implements packed shadow updating (§2.1): it scans the
// index's buckets, drops entries whose day is in expire, merges in the
// postings of adds, and writes the result as a new packed index on the
// same store. The original index is left untouched; the caller swaps it
// out of the wave index and drops it.
func (idx *Index) PackedMerge(expire []int, adds ...*Batch) (*Index, error) {
	if idx.dropped {
		return nil, ErrDropped
	}
	gone := make(map[int32]struct{}, len(expire))
	for _, d := range expire {
		gone[int32(d)] = struct{}{}
	}
	// Read every bucket sequentially in directory order so the store sees
	// the exact access pattern of a serial scan (seek charges depend on
	// issue order), then decode and filter the raw bytes in parallel —
	// that part is pure CPU work on private buffers.
	type rawBucket struct {
		key  string
		raw  []byte
		used int
		kept []Entry
	}
	var raws []rawBucket
	var err error
	idx.dir.ascend(func(key string, b *bucketRef) bool {
		var raw []byte
		raw, err = idx.readBucketRaw(b)
		if err != nil {
			return false
		}
		raws = append(raws, rawBucket{key: key, raw: raw, used: b.used})
		return true
	})
	if err != nil {
		for _, r := range raws {
			putBuf(r.raw)
		}
		return nil, fmt.Errorf("index: packed merge: %w", err)
	}
	ranges := chunkRanges(len(raws), idx.opts.Parallelism)
	runWorkers(idx.opts.Parallelism, len(ranges), func(ci int) error {
		r := ranges[ci]
		for i := r[0]; i < r[1]; i++ {
			rb := &raws[i]
			kept := make([]Entry, 0, rb.used)
			for j := 0; j < rb.used; j++ {
				e := decodeEntry(rb.raw[j*EntrySize:])
				if _, x := gone[e.Day]; !x {
					kept = append(kept, e)
				}
			}
			rb.kept = kept
		}
		return nil
	})
	groups := make(map[string][]Entry, len(raws))
	for i := range raws {
		putBuf(raws[i].raw)
		if len(raws[i].kept) > 0 {
			groups[raws[i].key] = raws[i].kept
		}
	}
	for _, b := range adds {
		for _, p := range b.Postings {
			groups[p.Key] = append(groups[p.Key], p.Entry)
		}
	}
	days := make(map[int]struct{})
	for d := range idx.days {
		if _, x := gone[int32(d)]; !x {
			days[d] = struct{}{}
		}
	}
	for _, b := range adds {
		days[b.Day] = struct{}{}
	}
	out, err := buildFromGroups(idx.store, idx.opts, groups, days)
	if err != nil {
		return nil, fmt.Errorf("index: packed merge: %w", err)
	}
	return out, nil
}

// buildFromGroups writes a packed index for pre-collated per-key entries.
func buildFromGroups(store simdisk.BlockStore, opts Options, groups map[string][]Entry, days map[int]struct{}) (*Index, error) {
	idx := NewEmpty(store, opts)
	for d := range days {
		idx.days[d] = struct{}{}
	}
	idx.recomputeDayBounds()
	if len(groups) == 0 {
		return idx, nil
	}
	keys := make([]string, 0, len(groups))
	total := 0
	for k, es := range groups {
		keys = append(keys, k)
		total += len(es)
	}
	sort.Strings(keys)
	bs := int64(store.BlockSize())
	seg, err := store.Alloc((int64(total)*EntrySize + bs - 1) / bs)
	if err != nil {
		return nil, err
	}
	idx.seg = seg
	idx.allocBytes += seg.Bytes(store.BlockSize())
	// Lay out the directory sequentially (offsets are a prefix sum over the
	// sorted keys, and the directory is not safe for concurrent writes),
	// then encode contiguous key ranges in parallel: every worker owns a
	// disjoint slice of the one output buffer, and the single ordered
	// WriteAt below keeps the store's charge sequence identical at any
	// parallelism.
	offs := make([]int64, len(keys))
	var off int64
	for i, k := range keys {
		es := groups[k]
		offs[i] = off
		idx.dir.set(k, &bucketRef{off: off, used: len(es), cap: len(es)})
		off += int64(len(es) * EntrySize)
	}
	buf := getBuf(total * EntrySize)
	ranges := chunkRanges(len(keys), opts.Parallelism)
	runWorkers(opts.Parallelism, len(ranges), func(ci int) error {
		r := ranges[ci]
		for i := r[0]; i < r[1]; i++ {
			encodeEntriesInto(buf[offs[i]:], groups[keys[i]])
		}
		return nil
	})
	werr := store.WriteAt(seg, 0, buf)
	putBuf(buf)
	if werr != nil {
		return nil, werr
	}
	idx.entries = total
	return idx, nil
}
