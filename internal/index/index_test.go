package index

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"waveindex/internal/simdisk"
)

func newStore(t testing.TB) *simdisk.Store {
	t.Helper()
	s := simdisk.NewRAM(simdisk.Config{BlockSize: 256})
	t.Cleanup(func() { s.Close() })
	return s
}

// mkBatch builds a day batch with one posting per (key, n) pair, n entries
// for each key, record IDs derived from day and sequence.
func mkBatch(day int, keyCounts map[string]int) *Batch {
	b := &Batch{Day: day}
	keys := make([]string, 0, len(keyCounts))
	for k := range keyCounts {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	seq := uint64(0)
	for _, k := range keys {
		for i := 0; i < keyCounts[k]; i++ {
			b.Postings = append(b.Postings, Posting{
				Key:   k,
				Entry: Entry{RecordID: uint64(day)*1_000_000 + seq, Aux: uint32(i), Day: int32(day)},
			})
			seq++
		}
	}
	return b
}

func probeKeys(t *testing.T, idx *Index, key string) []Entry {
	t.Helper()
	es, err := idx.Probe(key, -1<<30, 1<<30)
	if err != nil {
		t.Fatalf("Probe(%q): %v", key, err)
	}
	return es
}

func TestBuildPackedAndProbe(t *testing.T) {
	for _, kind := range []DirKind{HashDir, BTreeDir} {
		t.Run(kind.String(), func(t *testing.T) {
			s := newStore(t)
			idx, err := BuildPacked(s, Options{Dir: kind},
				mkBatch(1, map[string]int{"apple": 3, "pear": 1}),
				mkBatch(2, map[string]int{"apple": 2, "plum": 4}),
			)
			if err != nil {
				t.Fatal(err)
			}
			if !idx.Packed() {
				t.Error("freshly built index not packed")
			}
			if got := idx.NumEntries(); got != 10 {
				t.Errorf("NumEntries = %d, want 10", got)
			}
			if got := idx.NumKeys(); got != 3 {
				t.Errorf("NumKeys = %d, want 3", got)
			}
			if got := fmt.Sprint(idx.Days()); got != "[1 2]" {
				t.Errorf("Days = %s, want [1 2]", got)
			}
			if got := len(probeKeys(t, idx, "apple")); got != 5 {
				t.Errorf("apple entries = %d, want 5", got)
			}
			if got := len(probeKeys(t, idx, "missing")); got != 0 {
				t.Errorf("missing key entries = %d, want 0", got)
			}
		})
	}
}

func TestBuildPackedEmpty(t *testing.T) {
	s := newStore(t)
	idx, err := BuildPacked(s, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if idx.NumEntries() != 0 || idx.NumKeys() != 0 || len(idx.Days()) != 0 {
		t.Errorf("empty build: %d entries, %d keys, days %v", idx.NumEntries(), idx.NumKeys(), idx.Days())
	}
	if err := idx.Scan(-1<<30, 1<<30, func(string, Entry) bool { t.Error("scan visited entry"); return false }); err != nil {
		t.Fatal(err)
	}
	if idx.SizeBytes() != 0 {
		t.Errorf("SizeBytes = %d, want 0", idx.SizeBytes())
	}
}

func TestTimedProbeFiltersByDay(t *testing.T) {
	s := newStore(t)
	idx, err := BuildPacked(s, Options{},
		mkBatch(5, map[string]int{"k": 2}),
		mkBatch(6, map[string]int{"k": 3}),
		mkBatch(7, map[string]int{"k": 4}),
	)
	if err != nil {
		t.Fatal(err)
	}
	es, err := idx.Probe("k", 6, 6)
	if err != nil {
		t.Fatal(err)
	}
	if len(es) != 3 {
		t.Fatalf("timed probe [6,6] = %d entries, want 3", len(es))
	}
	for _, e := range es {
		if e.Day != 6 {
			t.Errorf("entry day %d escaped the [6,6] filter", e.Day)
		}
	}
	if es, _ := idx.Probe("k", 8, 10); len(es) != 0 {
		t.Errorf("out-of-range probe = %d entries, want 0", len(es))
	}
}

func TestPackedScanSingleSeek(t *testing.T) {
	s := newStore(t)
	idx, err := BuildPacked(s, Options{}, mkBatch(1, map[string]int{"a": 20, "b": 20, "c": 20, "d": 20}))
	if err != nil {
		t.Fatal(err)
	}
	s.ResetStats()
	n := 0
	if err := idx.Scan(-1<<30, 1<<30, func(string, Entry) bool { n++; return true }); err != nil {
		t.Fatal(err)
	}
	if n != 80 {
		t.Fatalf("scan visited %d entries, want 80", n)
	}
	if seeks := s.Stats().Seeks; seeks != 1 {
		t.Errorf("packed scan cost %d seeks, want 1 (contiguous buckets)", seeks)
	}
}

func TestScanOrderIsKeyOrder(t *testing.T) {
	for _, kind := range []DirKind{HashDir, BTreeDir} {
		s := newStore(t)
		idx, err := BuildPacked(s, Options{Dir: kind}, mkBatch(1, map[string]int{"m": 1, "a": 1, "z": 1, "c": 1}))
		if err != nil {
			t.Fatal(err)
		}
		var keys []string
		if err := idx.Scan(-1<<30, 1<<30, func(k string, _ Entry) bool { keys = append(keys, k); return true }); err != nil {
			t.Fatal(err)
		}
		if got, want := fmt.Sprint(keys), "[a c m z]"; got != want {
			t.Errorf("%v scan order = %s, want %s", kind, got, want)
		}
	}
}

func TestScanEarlyStop(t *testing.T) {
	s := newStore(t)
	idx, _ := BuildPacked(s, Options{}, mkBatch(1, map[string]int{"a": 5, "b": 5}))
	n := 0
	if err := idx.Scan(-1<<30, 1<<30, func(string, Entry) bool { n++; return n < 3 }); err != nil {
		t.Fatal(err)
	}
	if n != 3 {
		t.Errorf("visited %d entries, want 3", n)
	}
}

func TestAddToEmptyIndex(t *testing.T) {
	s := newStore(t)
	idx := NewEmpty(s, Options{})
	if err := idx.Add(mkBatch(3, map[string]int{"x": 2, "y": 1})); err != nil {
		t.Fatal(err)
	}
	if got := idx.NumEntries(); got != 3 {
		t.Errorf("NumEntries = %d, want 3", got)
	}
	if !idx.HasDay(3) {
		t.Error("day 3 missing from time-set")
	}
	if got := len(probeKeys(t, idx, "x")); got != 2 {
		t.Errorf("x entries = %d, want 2", got)
	}
}

func TestAddGrowsBucketContiguous(t *testing.T) {
	s := newStore(t)
	idx := NewEmpty(s, Options{Growth: 2.0, MinBucketCap: 4})
	// Fill one key well past several growth boundaries.
	for day := 1; day <= 10; day++ {
		if err := idx.Add(mkBatch(day, map[string]int{"hot": 17})); err != nil {
			t.Fatalf("day %d: %v", day, err)
		}
	}
	es := probeKeys(t, idx, "hot")
	if len(es) != 170 {
		t.Fatalf("hot entries = %d, want 170", len(es))
	}
	// All entries intact and in insertion order per day.
	for i := 1; i < len(es); i++ {
		if es[i].RecordID < es[i-1].RecordID {
			t.Fatalf("entries out of order at %d: %v after %v", i, es[i], es[i-1])
		}
	}
	if idx.Packed() {
		t.Error("index still reports packed after incremental growth")
	}
	// Growth headroom means allocated bytes exceed the packed minimum.
	if idx.SizeBytes() <= int64(170*EntrySize) {
		t.Errorf("SizeBytes = %d, want > packed size %d", idx.SizeBytes(), 170*EntrySize)
	}
}

func TestAddToPackedRelocatesBucket(t *testing.T) {
	s := newStore(t)
	idx, err := BuildPacked(s, Options{}, mkBatch(1, map[string]int{"a": 3, "b": 3}))
	if err != nil {
		t.Fatal(err)
	}
	if err := idx.Add(mkBatch(2, map[string]int{"a": 1})); err != nil {
		t.Fatal(err)
	}
	if idx.Packed() {
		t.Error("index reports packed after overflowing a packed bucket")
	}
	if got := len(probeKeys(t, idx, "a")); got != 4 {
		t.Errorf("a entries = %d, want 4", got)
	}
	if got := len(probeKeys(t, idx, "b")); got != 3 {
		t.Errorf("b entries = %d (sibling bucket should be untouched)", got)
	}
}

func TestDeleteDay(t *testing.T) {
	s := newStore(t)
	idx, err := BuildPacked(s, Options{},
		mkBatch(1, map[string]int{"a": 2, "only1": 3}),
		mkBatch(2, map[string]int{"a": 2}),
	)
	if err != nil {
		t.Fatal(err)
	}
	if err := idx.Delete(1); err != nil {
		t.Fatal(err)
	}
	if idx.HasDay(1) || !idx.HasDay(2) {
		t.Errorf("time-set after delete = %v", idx.Days())
	}
	if got := idx.NumEntries(); got != 2 {
		t.Errorf("NumEntries = %d, want 2", got)
	}
	if got := len(probeKeys(t, idx, "a")); got != 2 {
		t.Errorf("a entries = %d, want 2", got)
	}
	// only1's bucket became empty and must leave the directory.
	if got := idx.NumKeys(); got != 1 {
		t.Errorf("NumKeys = %d, want 1", got)
	}
	if got := len(probeKeys(t, idx, "only1")); got != 0 {
		t.Errorf("only1 entries = %d, want 0", got)
	}
}

func TestDeleteFreesOwnedBuckets(t *testing.T) {
	s := newStore(t)
	idx := NewEmpty(s, Options{})
	if err := idx.Add(mkBatch(1, map[string]int{"gone": 5})); err != nil {
		t.Fatal(err)
	}
	before := s.Stats().UsedBlocks
	if before == 0 {
		t.Fatal("no blocks allocated")
	}
	if err := idx.Delete(1); err != nil {
		t.Fatal(err)
	}
	if after := s.Stats().UsedBlocks; after != 0 {
		t.Errorf("UsedBlocks = %d after deleting sole day, want 0", after)
	}
	if idx.SizeBytes() != 0 {
		t.Errorf("SizeBytes = %d, want 0", idx.SizeBytes())
	}
}

func TestDeleteNoMatchIsNoop(t *testing.T) {
	s := newStore(t)
	idx, _ := BuildPacked(s, Options{}, mkBatch(1, map[string]int{"a": 2}))
	if err := idx.Delete(99); err != nil {
		t.Fatal(err)
	}
	if idx.NumEntries() != 2 || !idx.Packed() {
		t.Errorf("no-op delete changed index: %d entries, packed=%v", idx.NumEntries(), idx.Packed())
	}
}

func TestDropFreesAllStorage(t *testing.T) {
	s := newStore(t)
	idx, err := BuildPacked(s, Options{}, mkBatch(1, map[string]int{"a": 10, "b": 10}))
	if err != nil {
		t.Fatal(err)
	}
	if err := idx.Add(mkBatch(2, map[string]int{"c": 30})); err != nil {
		t.Fatal(err)
	}
	if err := idx.Drop(); err != nil {
		t.Fatal(err)
	}
	if got := s.Stats().UsedBlocks; got != 0 {
		t.Errorf("UsedBlocks = %d after Drop, want 0", got)
	}
	if !idx.Dropped() {
		t.Error("Dropped() = false")
	}
	// All operations now fail with ErrDropped.
	if err := idx.Add(mkBatch(3, map[string]int{"x": 1})); !errors.Is(err, ErrDropped) {
		t.Errorf("Add after drop err = %v", err)
	}
	if _, err := idx.Probe("a", 0, 9); !errors.Is(err, ErrDropped) {
		t.Errorf("Probe after drop err = %v", err)
	}
	if err := idx.Delete(1); !errors.Is(err, ErrDropped) {
		t.Errorf("Delete after drop err = %v", err)
	}
	if err := idx.Scan(0, 9, func(string, Entry) bool { return true }); !errors.Is(err, ErrDropped) {
		t.Errorf("Scan after drop err = %v", err)
	}
	if _, err := idx.Clone(); !errors.Is(err, ErrDropped) {
		t.Errorf("Clone after drop err = %v", err)
	}
	if err := idx.Drop(); !errors.Is(err, ErrDropped) {
		t.Errorf("double Drop err = %v", err)
	}
}

func TestCloneIsIndependent(t *testing.T) {
	s := newStore(t)
	orig, err := BuildPacked(s, Options{}, mkBatch(1, map[string]int{"a": 4, "b": 2}))
	if err != nil {
		t.Fatal(err)
	}
	if err := orig.Add(mkBatch(2, map[string]int{"c": 6})); err != nil {
		t.Fatal(err)
	}
	clone, err := orig.Clone()
	if err != nil {
		t.Fatal(err)
	}
	if clone.NumEntries() != orig.NumEntries() {
		t.Fatalf("clone entries = %d, want %d", clone.NumEntries(), orig.NumEntries())
	}
	// Mutating the clone must not affect the original (shadow semantics).
	if err := clone.Delete(1); err != nil {
		t.Fatal(err)
	}
	if err := clone.Add(mkBatch(3, map[string]int{"a": 1})); err != nil {
		t.Fatal(err)
	}
	if got := len(probeKeys(t, orig, "a")); got != 4 {
		t.Errorf("original a entries = %d after clone mutation, want 4", got)
	}
	if !orig.HasDay(1) {
		t.Error("original lost day 1 after clone deletion")
	}
	if got := len(probeKeys(t, clone, "a")); got != 1 {
		t.Errorf("clone a entries = %d, want 1", got)
	}
}

func TestClonePreservesLayoutShape(t *testing.T) {
	s := newStore(t)
	packed, _ := BuildPacked(s, Options{}, mkBatch(1, map[string]int{"a": 8}))
	pc, err := packed.Clone()
	if err != nil {
		t.Fatal(err)
	}
	if !pc.Packed() {
		t.Error("clone of packed index is not packed")
	}
	unpacked := NewEmpty(s, Options{})
	if err := unpacked.Add(mkBatch(1, map[string]int{"a": 8})); err != nil {
		t.Fatal(err)
	}
	uc, err := unpacked.Clone()
	if err != nil {
		t.Fatal(err)
	}
	if uc.Packed() {
		t.Error("clone of unpacked index reports packed")
	}
	if uc.SizeBytes() != unpacked.SizeBytes() {
		t.Errorf("clone size = %d, want %d (headroom preserved)", uc.SizeBytes(), unpacked.SizeBytes())
	}
}

func TestPackedMergeDropsAndAdds(t *testing.T) {
	s := newStore(t)
	idx, err := BuildPacked(s, Options{},
		mkBatch(1, map[string]int{"a": 3, "old": 2}),
		mkBatch(2, map[string]int{"a": 1}),
	)
	if err != nil {
		t.Fatal(err)
	}
	merged, err := idx.PackedMerge([]int{1}, mkBatch(3, map[string]int{"a": 2, "new": 1}))
	if err != nil {
		t.Fatal(err)
	}
	if !merged.Packed() {
		t.Error("PackedMerge result not packed")
	}
	if got := fmt.Sprint(merged.Days()); got != "[2 3]" {
		t.Errorf("merged days = %s, want [2 3]", got)
	}
	if got := len(probeKeys(t, merged, "a")); got != 3 {
		t.Errorf("a entries = %d, want 3 (1 surviving + 2 added)", got)
	}
	if got := len(probeKeys(t, merged, "old")); got != 0 {
		t.Errorf("old entries = %d, want 0", got)
	}
	if got := len(probeKeys(t, merged, "new")); got != 1 {
		t.Errorf("new entries = %d, want 1", got)
	}
	// Result size is minimal: exactly the packed size rounded to blocks.
	minBytes := int64(merged.NumEntries() * EntrySize)
	bs := int64(s.BlockSize())
	wantBytes := (minBytes + bs - 1) / bs * bs
	if merged.SizeBytes() != wantBytes {
		t.Errorf("merged SizeBytes = %d, want %d", merged.SizeBytes(), wantBytes)
	}
	// Original untouched.
	if idx.NumEntries() != 6 {
		t.Errorf("original entries = %d after merge, want 6", idx.NumEntries())
	}
}

func TestPackedMergeToEmpty(t *testing.T) {
	s := newStore(t)
	idx, _ := BuildPacked(s, Options{}, mkBatch(1, map[string]int{"a": 2}))
	merged, err := idx.PackedMerge([]int{1})
	if err != nil {
		t.Fatal(err)
	}
	if merged.NumEntries() != 0 || merged.NumKeys() != 0 {
		t.Errorf("merge-to-empty: %d entries, %d keys", merged.NumEntries(), merged.NumKeys())
	}
}

func TestStoreErrorsPropagate(t *testing.T) {
	s := newStore(t)
	idx, err := BuildPacked(s, Options{}, mkBatch(1, map[string]int{"a": 2}))
	if err != nil {
		t.Fatal(err)
	}
	boom := errors.New("boom")
	s.FailAfter(simdisk.OpRead, 0, boom)
	if _, err := idx.Probe("a", 0, 9); !errors.Is(err, boom) {
		t.Errorf("Probe err = %v, want wrapped boom", err)
	}
	s.FailAfter(simdisk.OpAlloc, 0, boom)
	if _, err := BuildPacked(s, Options{}, mkBatch(1, map[string]int{"x": 1})); !errors.Is(err, boom) {
		t.Errorf("BuildPacked alloc err = %v, want wrapped boom", err)
	}
	s.FailAfter(simdisk.OpWrite, 0, boom)
	if err := idx.Add(mkBatch(2, map[string]int{"zz": 1})); !errors.Is(err, boom) {
		t.Errorf("Add err = %v, want wrapped boom", err)
	}
}

func TestEntryCodecRoundTrip(t *testing.T) {
	es := []Entry{
		{RecordID: 0, Aux: 0, Day: 0},
		{RecordID: ^uint64(0), Aux: ^uint32(0), Day: -5},
		{RecordID: 123456789, Aux: 42, Day: 30000},
	}
	buf := encodeEntries(es)
	if len(buf) != len(es)*EntrySize {
		t.Fatalf("encoded %d bytes, want %d", len(buf), len(es)*EntrySize)
	}
	got := decodeEntries(buf, len(es))
	for i := range es {
		if got[i] != es[i] {
			t.Errorf("entry %d round-trip = %v, want %v", i, got[i], es[i])
		}
	}
}

// TestRandomizedModelConformance exercises Build/Add/Delete/Probe against
// an in-memory model across both directory kinds and growth factors.
func TestRandomizedModelConformance(t *testing.T) {
	for _, kind := range []DirKind{HashDir, BTreeDir} {
		for _, g := range []float64{1.08, 2.0} {
			t.Run(fmt.Sprintf("%v g=%.2f", kind, g), func(t *testing.T) {
				rng := rand.New(rand.NewSource(42))
				s := newStore(t)
				idx := NewEmpty(s, Options{Dir: kind, Growth: g})
				model := map[string][]Entry{} // key -> live entries
				keys := []string{"k0", "k1", "k2", "k3", "k4", "k5", "k6", "k7"}
				for day := 1; day <= 40; day++ {
					b := &Batch{Day: day}
					for i := 0; i < rng.Intn(20); i++ {
						k := keys[rng.Intn(len(keys))]
						e := Entry{RecordID: uint64(day*1000 + i), Day: int32(day)}
						b.Postings = append(b.Postings, Posting{Key: k, Entry: e})
						model[k] = append(model[k], e)
					}
					if err := idx.Add(b); err != nil {
						t.Fatal(err)
					}
					if day%7 == 0 { // expire a random old day
						gone := rng.Intn(day) + 1
						if err := idx.Delete(gone); err != nil {
							t.Fatal(err)
						}
						for k := range model {
							kept := model[k][:0]
							for _, e := range model[k] {
								if int(e.Day) != gone {
									kept = append(kept, e)
								}
							}
							model[k] = kept
						}
					}
					// Spot-check a probe.
					k := keys[rng.Intn(len(keys))]
					lo := rng.Intn(day + 1)
					hi := lo + rng.Intn(day-lo+1)
					got, err := idx.Probe(k, lo, hi)
					if err != nil {
						t.Fatal(err)
					}
					var want []Entry
					for _, e := range model[k] {
						if int(e.Day) >= lo && int(e.Day) <= hi {
							want = append(want, e)
						}
					}
					if fmt.Sprint(got) != fmt.Sprint(want) {
						t.Fatalf("day %d: Probe(%q,%d,%d) = %v, want %v", day, k, lo, hi, got, want)
					}
				}
				// Full scan equals the model.
				total := 0
				for _, es := range model {
					total += len(es)
				}
				n := 0
				seen := map[string]int{}
				if err := idx.Scan(-1<<30, 1<<30, func(k string, _ Entry) bool { n++; seen[k]++; return true }); err != nil {
					t.Fatal(err)
				}
				if n != total {
					t.Errorf("scan visited %d entries, want %d", n, total)
				}
				for k, c := range seen {
					if c != len(model[k]) {
						t.Errorf("key %s: scan saw %d, want %d", k, c, len(model[k]))
					}
				}
			})
		}
	}
}
