module waveindex

go 1.22
